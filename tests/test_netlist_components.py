"""Tests for primitive components (repro.netlist.components)."""

import pytest

from repro import DeviceKind, FlowDirection, Node, Transistor, UM


class TestNode:
    def test_basic_construction(self):
        node = Node("n1", cap=1e-15)
        assert node.name == "n1"
        assert node.cap == 1e-15

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Node("")

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            Node("n", cap=-1e-15)


def _t(**kwargs) -> Transistor:
    defaults = dict(
        name="m1",
        kind=DeviceKind.ENH,
        gate="g",
        source="s",
        drain="d",
        w=8 * UM,
        l=4 * UM,
    )
    defaults.update(kwargs)
    return Transistor(**defaults)


class TestTransistor:
    def test_channel_nodes(self):
        assert _t().channel_nodes == ("s", "d")

    def test_other_channel(self):
        t = _t()
        assert t.other_channel("s") == "d"
        assert t.other_channel("d") == "s"

    def test_other_channel_rejects_non_terminal(self):
        with pytest.raises(ValueError):
            _t().other_channel("g")

    def test_source_equals_drain_rejected(self):
        with pytest.raises(ValueError):
            _t(source="x", drain="x")

    def test_nonpositive_geometry_rejected(self):
        with pytest.raises(ValueError):
            _t(w=0.0)

    def test_kind_coerced_from_string(self):
        assert _t(kind="dep").kind is DeviceKind.DEP

    def test_is_load_requires_tied_gate(self):
        load = _t(kind=DeviceKind.DEP, gate="s")
        assert load.is_load
        follower = _t(kind=DeviceKind.DEP, gate="g")
        assert not follower.is_load
        enh = _t(gate="s")
        assert not enh.is_load

    def test_touches_channel(self):
        t = _t()
        assert t.touches_channel("s")
        assert t.touches_channel("d")
        assert not t.touches_channel("g")


class TestFlowDirection:
    def test_unknown_is_unresolved(self):
        assert not FlowDirection.UNKNOWN.resolved
        assert FlowDirection.BIDIR.resolved
        assert FlowDirection.S_TO_D.resolved

    def test_reversed(self):
        assert FlowDirection.S_TO_D.reversed() is FlowDirection.D_TO_S
        assert FlowDirection.D_TO_S.reversed() is FlowDirection.S_TO_D
        assert FlowDirection.BIDIR.reversed() is FlowDirection.BIDIR
        assert FlowDirection.UNKNOWN.reversed() is FlowDirection.UNKNOWN

    def test_flows_out_of_directional(self):
        t = _t(flow=FlowDirection.S_TO_D)
        assert t.flows_out_of("s")
        assert not t.flows_out_of("d")
        assert t.flows_into("d")
        assert not t.flows_into("s")

    def test_flows_bidir_both_ways(self):
        t = _t(flow=FlowDirection.BIDIR)
        assert t.flows_out_of("s") and t.flows_out_of("d")
        assert t.flows_into("s") and t.flows_into("d")

    def test_flows_unknown_neither(self):
        t = _t()
        assert not t.flows_out_of("s")
        assert not t.flows_into("d")
