"""Tests for the performance-improvement advisor (repro.opt)."""

import pytest

from repro import TimingAnalyzer
from repro.circuits import inverter_chain, pass_chain, ripple_adder
from repro.errors import ReproError
from repro.netlist import validate
from repro.opt import apply_suggestions, optimize, suggest_resizing


class TestSuggestions:
    def test_suggestions_target_path_devices(self):
        net = inverter_chain(4, load=200e-15)
        result = TimingAnalyzer(net).analyze()
        suggestions = suggest_resizing(net, result)
        assert suggestions
        path_devices = set()
        for step in result.critical_path.steps:
            for d in step.devices:
                if d.startswith("load@"):
                    node = d[len("load@"):]
                    path_devices.update(
                        x.name for x in net.channel_devices(node)
                    )
                else:
                    path_devices.add(d)
        for s in suggestions:
            assert s.device in path_devices

    def test_new_width_is_wider(self):
        net = inverter_chain(3)
        result = TimingAnalyzer(net).analyze()
        for s in suggest_resizing(net, result, factor=2.0):
            assert s.new_w > net.device(s.device).w

    def test_load_brings_pulldown_partners(self):
        net = inverter_chain(2, load=300e-15)
        result = TimingAnalyzer(net).analyze()
        suggestions = suggest_resizing(net, result, limit=10)
        load_suggestions = [s for s in suggestions if s.partners]
        assert load_suggestions, "a 300fF load makes the pull-up dominate"

    def test_invalid_factor_rejected(self):
        net = inverter_chain(2)
        result = TimingAnalyzer(net).analyze()
        with pytest.raises(ReproError):
            suggest_resizing(net, result, factor=1.0)

    def test_width_cap_respected(self):
        net = inverter_chain(2)
        result = TimingAnalyzer(net).analyze()
        w_cap = 2.0 * net.tech.min_width()
        suggestions = suggest_resizing(
            net, result, factor=1.5, max_w_multiple=2.0
        )
        for s in suggestions:
            assert s.new_w <= w_cap * 1.0001


class TestApply:
    def test_apply_mutates_widths(self):
        net = inverter_chain(3)
        result = TimingAnalyzer(net).analyze()
        suggestions = suggest_resizing(net, result, factor=2.0)
        before = {s.device: net.device(s.device).w for s in suggestions}
        touched = apply_suggestions(net, suggestions, 2.0)
        assert touched >= len(suggestions)
        for s in suggestions:
            assert net.device(s.device).w == pytest.approx(2 * before[s.device])

    def test_ratio_stays_legal_after_apply(self):
        net = inverter_chain(3, load=200e-15)
        result = TimingAnalyzer(net).analyze()
        apply_suggestions(net, suggest_resizing(net, result, limit=10))
        validate(net)  # ERC must still pass


class TestOptimizeLoop:
    def test_loaded_chain_improves(self):
        net = inverter_chain(4, load=500e-15)
        before = TimingAnalyzer(net).analyze().max_delay
        history = optimize(net, iterations=5)
        after = TimingAnalyzer(net).analyze().max_delay
        assert history
        assert after < before
        assert after < 0.8 * before  # a weak driver on 500fF gains a lot

    def test_history_is_monotone_improving(self):
        net = inverter_chain(4, load=500e-15)
        history = optimize(net, iterations=5)
        for step in history[:-1]:  # last step may be the no-improvement stop
            assert step.delay_after <= step.delay_before

    def test_target_stops_early(self):
        net = inverter_chain(4, load=500e-15)
        generous = TimingAnalyzer(net).analyze().max_delay * 2
        history = optimize(net, target=generous, iterations=5)
        assert history == []

    def test_pass_chain_resizing_helps(self):
        net = pass_chain(8)
        before = TimingAnalyzer(net).analyze().max_delay
        optimize(net, iterations=4)
        after = TimingAnalyzer(net).analyze().max_delay
        assert after < before

    def test_functionality_preserved(self):
        from repro.circuits import bus
        from repro.sim import SwitchSim

        net = ripple_adder(4)
        optimize(net, iterations=2, limit=6)
        sim = SwitchSim(net)
        sim.set_word(bus("a", 4), 6)
        sim.set_word(bus("b", 4), 7)
        sim.set_input("cin", 1)
        sim.settle()
        assert sim.word(bus("sum", 4)) == 14
