"""Tests for the parallel arc-extraction engine and its caching contract.

The pool must be a pure performance feature: identical arcs, identical
reports, identical ``AnalysisResult`` figures, for both executor flavours.
Cache invalidation must stay surgical -- only the stages a device edit
touches recompute.
"""

import multiprocessing

import pytest

from repro import TimingAnalyzer
from repro.circuits import (
    barrel_shifter,
    inverter_chain,
    manchester_adder,
    random_logic,
    register_file,
    ripple_adder,
)
from repro.delay import (
    PARALLEL_COLD_MIN_DEVICES,
    PARALLEL_MIN_DEVICES,
    auto_workers,
    parallel_crossover,
    pool_diagnostics,
    shutdown_pool,
    stage_delay,
)
from repro.errors import StageError
from repro.trace import Trace


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _arc_key(arc):
    return (arc.stage_index, arc.trigger, arc.output, arc.via)


class TestParallelMatchesSerial:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: ripple_adder(6),
            lambda: barrel_shifter(4),
            lambda: random_logic(400, seed=7),
        ],
    )
    def test_arc_lists_identical_thread_executor(self, make):
        serial = TimingAnalyzer(make(), workers=1)
        arcs_serial = serial.calculator.all_arcs(parallel=False)

        pooled = TimingAnalyzer(make(), workers=2, executor="thread")
        arcs_pooled = pooled.calculator.all_arcs(parallel=True, workers=2)

        assert arcs_serial == arcs_pooled

    @pytest.mark.skipif(not _fork_available(), reason="fork not available")
    def test_arc_lists_identical_process_executor(self):
        serial = TimingAnalyzer(random_logic(400, seed=7), workers=1)
        arcs_serial = serial.calculator.all_arcs(parallel=False)

        pooled = TimingAnalyzer(
            random_logic(400, seed=7), workers=2, executor="process"
        )
        arcs_pooled = pooled.calculator.all_arcs(parallel=True, workers=2)

        assert arcs_serial == arcs_pooled

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_analysis_results_identical(self, executor):
        if executor == "process" and not _fork_available():
            pytest.skip("fork not available")
        serial_result = TimingAnalyzer(random_logic(300, seed=7)).analyze()

        tv = TimingAnalyzer(
            random_logic(300, seed=7), workers=2, executor=executor
        )
        tv.calculator.all_arcs(parallel=True, workers=2)
        pooled_result = tv.analyze()

        assert pooled_result.max_delay == serial_result.max_delay
        assert pooled_result.stage_count == serial_result.stage_count
        assert len(pooled_result.paths) == len(serial_result.paths)
        for mine, theirs in zip(pooled_result.paths, serial_result.paths):
            assert mine.steps == theirs.steps
        serial_result.analysis_seconds = 0.0
        pooled_result.analysis_seconds = 0.0
        assert pooled_result.report() == serial_result.report()

    def test_two_phase_circuit_identical_reports(self):
        serial = TimingAnalyzer(register_file(2, 2)[0]).analyze()
        pooled_tv = TimingAnalyzer(
            register_file(2, 2)[0], workers=2, executor="thread"
        )
        pooled_tv.calculator.all_arcs(parallel=True, workers=2)
        pooled = pooled_tv.analyze()
        serial.analysis_seconds = 0.0
        pooled.analysis_seconds = 0.0
        assert pooled.report() == serial.report()

    def test_parallel_fills_the_same_cache_keys(self):
        tv = TimingAnalyzer(
            random_logic(300, seed=7), workers=2, executor="thread"
        )
        tv.calculator.all_arcs(parallel=True, workers=2)
        pooled_keys = set(tv.calculator._arc_cache)
        arcs = tv.calculator.all_arcs(parallel=False)  # pure cache walk

        fresh = TimingAnalyzer(random_logic(300, seed=7))
        fresh.calculator.all_arcs(parallel=False)
        assert pooled_keys == set(fresh.calculator._arc_cache)
        assert arcs == fresh.calculator.all_arcs(parallel=False)


class TestWorkerConfiguration:
    def test_small_netlists_stay_serial_on_auto(self):
        net = ripple_adder(4)
        assert len(net.devices) < PARALLEL_MIN_DEVICES
        tv = TimingAnalyzer(net, workers=4)
        # parallel=None (auto) must not spin a pool for a tiny circuit;
        # observable contract: results exist and caching works as serial.
        arcs = tv.calculator.all_arcs()
        assert arcs
        assert tv.calculator._arc_cache

    @pytest.mark.parametrize("bad", [0, -1, -8, "0", "-3", True, False])
    def test_non_positive_and_bool_workers_rejected(self, bad):
        # workers=0 used to be silently clamped to 1, hiding caller
        # bugs; it is a loud StageError now (bools included: True is a
        # misplaced parallel=True, not a width of 1).
        with pytest.raises(StageError):
            TimingAnalyzer(ripple_adder(4), workers=bad)

    def test_workers_one_and_auto_still_accepted(self):
        assert TimingAnalyzer(ripple_adder(4), workers=1).workers == 1
        assert TimingAnalyzer(ripple_adder(4), workers="auto").workers == "auto"

    def test_unknown_executor_rejected(self):
        with pytest.raises(StageError):
            TimingAnalyzer(ripple_adder(4), executor="mpi")


class TestCrossoverHeuristic:
    """The auto decision: device count vs. pool warmth vs. CPUs."""

    def test_single_cpu_never_goes_parallel(self):
        assert not parallel_crossover(10**9, pool_warm=True, cpus=1)

    def test_warm_floor_boundary(self):
        assert parallel_crossover(
            PARALLEL_MIN_DEVICES, pool_warm=True, cpus=4
        )
        assert not parallel_crossover(
            PARALLEL_MIN_DEVICES - 1, pool_warm=True, cpus=4
        )

    def test_cold_floor_boundary(self):
        assert parallel_crossover(
            PARALLEL_COLD_MIN_DEVICES, pool_warm=False, cpus=4
        )
        assert not parallel_crossover(
            PARALLEL_COLD_MIN_DEVICES - 1, pool_warm=False, cpus=4
        )
        # A cold pool needs more devices to be worth forking than a warm
        # one needs to be worth reusing.
        assert PARALLEL_COLD_MIN_DEVICES > PARALLEL_MIN_DEVICES

    def test_below_threshold_takes_serial_path(self, monkeypatch):
        monkeypatch.setattr(stage_delay, "available_cpus", lambda: 4)
        trace = Trace(logger=None)
        tv = TimingAnalyzer(
            random_logic(300, seed=7),
            workers=4,
            executor="thread",
            trace=trace,
        )
        tv.calculator.all_arcs()
        assert trace.counters.get("extract_serial_sweeps", 0) == 1
        assert trace.counters.get("extract_parallel_sweeps", 0) == 0

    def test_above_threshold_takes_parallel_path(self, monkeypatch):
        monkeypatch.setattr(stage_delay, "available_cpus", lambda: 4)
        monkeypatch.setattr(stage_delay, "PARALLEL_MIN_DEVICES", 100)
        trace = Trace(logger=None)
        tv = TimingAnalyzer(
            random_logic(300, seed=7),
            workers=4,
            executor="thread",
            trace=trace,
        )
        tv.calculator.all_arcs()
        assert trace.counters.get("extract_parallel_sweeps", 0) == 1
        assert trace.counters.get("extract_serial_sweeps", 0) == 0

    @pytest.mark.skipif(not _fork_available(), reason="fork not available")
    def test_forced_parallel_tiny_circuit_matches_serial(self):
        import json

        serial = json.dumps(
            TimingAnalyzer(inverter_chain(4), workers=1).analyze().to_json()
        )
        tv = TimingAnalyzer(inverter_chain(4), workers=2, executor="process")
        tv.calculator.all_arcs(parallel=True)
        try:
            assert json.dumps(tv.analyze().to_json()) == serial
        finally:
            shutdown_pool()


class TestWorkersAuto:
    def test_auto_spec_accepted_and_propagated(self):
        tv = TimingAnalyzer(ripple_adder(4), workers="auto")
        assert tv.workers == "auto"
        baseline = TimingAnalyzer(ripple_adder(4)).analyze()
        assert tv.analyze().max_delay == baseline.max_delay

    def test_auto_workers_tracks_affinity_with_a_cap(self, monkeypatch):
        monkeypatch.setattr(stage_delay, "available_cpus", lambda: 32)
        assert auto_workers() == 8
        monkeypatch.setattr(stage_delay, "available_cpus", lambda: 3)
        assert auto_workers() == 3
        monkeypatch.setattr(stage_delay, "available_cpus", lambda: 1)
        assert auto_workers() == 1

    def test_bogus_workers_spec_rejected(self):
        with pytest.raises(StageError):
            TimingAnalyzer(ripple_adder(4), workers="many")


@pytest.mark.skipif(not _fork_available(), reason="fork not available")
class TestPersistentPool:
    def test_pool_reused_across_sweeps(self):
        shutdown_pool()
        trace = Trace(logger=None)
        tv = TimingAnalyzer(
            random_logic(400, seed=7),
            workers=2,
            executor="process",
            trace=trace,
        )
        try:
            tv.calculator.all_arcs(parallel=True)
            assert trace.counters.get("extract_pool_cold_starts", 0) == 1
            assert pool_diagnostics()["live"]

            tv.calculator._arc_cache.clear()
            tv.calculator.all_arcs(parallel=True)
            assert trace.counters.get("extract_pool_cold_starts", 0) == 1
            assert trace.counters.get("extract_pool_reuses", 0) == 1
        finally:
            shutdown_pool()
        assert not pool_diagnostics()["live"]

    def test_device_edit_rebinds_pool(self):
        shutdown_pool()
        net = random_logic(400, seed=7)
        trace = Trace(logger=None)
        tv = TimingAnalyzer(net, workers=2, executor="process", trace=trace)
        try:
            tv.calculator.all_arcs(parallel=True)
            assert trace.counters.get("extract_pool_cold_starts", 0) == 1

            target = sorted(net.devices)[0]
            net.device(target).w *= 1.25
            tv.notify_changed([target])
            tv.calculator._arc_cache.clear()
            tv.calculator.all_arcs(parallel=True)
            # The edit bumped the snapshot epoch: the live pool no longer
            # matches and a fresh one is forked from the edited netlist.
            assert trace.counters.get("extract_pool_cold_starts", 0) == 2
            assert trace.counters.get("extract_pool_reuses", 0) == 0
        finally:
            shutdown_pool()


class TestInvalidation:
    def test_notify_changed_recomputes_only_affected_stage(self):
        net = manchester_adder(6)
        tv = TimingAnalyzer(net)
        base = tv.analyze()
        populated = dict(tv.calculator._arc_cache)

        target = next(iter(net.devices))
        dev = net.device(target)
        touched_stages = {
            tv.stage_graph.stage_of(n).index
            for n in (dev.gate, dev.source, dev.drain)
            if tv.stage_graph.stage_of(n) is not None
        }
        tv.notify_changed([target])

        for key, arcs in tv.calculator._arc_cache.items():
            # Untouched stages keep the *same* cached lists (identity:
            # nothing was recomputed for them).
            assert key[0] not in touched_stages
            assert arcs is populated[key]
        dropped = set(populated) - set(tv.calculator._arc_cache)
        assert dropped
        assert {key[0] for key in dropped} <= touched_stages

        # Re-analysis refills exactly the dropped keys with equal results
        # (the device itself was not edited, only marked).
        again = tv.analyze()
        assert again.max_delay == base.max_delay
        assert set(tv.calculator._arc_cache) == set(populated)

    def test_invalidate_devices_clears_cap_and_fact_caches(self):
        net = ripple_adder(4)
        tv = TimingAnalyzer(net)
        tv.analyze()
        calc = tv.calculator
        assert calc._cap_cache and calc._device_facts is not None

        target = next(iter(net.devices))
        dev = net.device(target)
        calc.invalidate_devices([target])
        assert calc._device_facts is None
        for node in (dev.gate, dev.source, dev.drain):
            assert node not in calc._cap_cache

    def test_edit_then_parallel_reanalysis_matches_fresh(self):
        net = random_logic(300, seed=7)
        tv = TimingAnalyzer(net, workers=2, executor="thread")
        tv.calculator.all_arcs(parallel=True, workers=2)
        tv.analyze()

        target = sorted(net.devices)[3]
        net.device(target).w *= 1.5
        tv.notify_changed([target])
        tv.calculator.all_arcs(parallel=True, workers=2)
        incremental = tv.analyze().max_delay

        fresh_net = random_logic(300, seed=7)
        fresh_net.device(target).w *= 1.5
        fresh = TimingAnalyzer(fresh_net).analyze().max_delay
        assert incremental == pytest.approx(fresh, rel=1e-12)
