"""Tests for the parametric (symbolic) delay layer.

The contract under test is the ISSUE 9 hard gate: analytic delay terms
(:mod:`repro.delay.parametric`) evaluated at the point they were
extracted from must be **bit-for-bit identical** to the concrete models
-- swept over every circuit generator in the zoo, serial and pooled,
and (via hypothesis) over random in-range technology points.  On top of
parity, the sensitivity query surface (``explain(sensitivity=True)``)
and the model's monotonic-sanity invariants are exercised.
"""

import dataclasses
import json
import multiprocessing

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import TimingAnalyzer
from repro.bench.perf import parity_circuits
from repro.circuits import inverter_chain, ripple_adder
from repro.core.mcmm import Scenario, corner_scenarios
from repro.delay import stage_delay
from repro.delay.parametric import (
    PARAMETERS,
    SENSITIVITY_REL_STEP,
    evaluate_arcs,
    evaluate_timing,
    perturbed,
)
from repro.errors import ReproError
from repro.tech import NMOS4
from repro.trace import Trace

RESISTANCE_PARAMS = (
    "r_sq_enh_pulldown",
    "r_sq_enh_pass",
    "r_sq_dep_pullup",
)
CAPACITANCE_PARAMS = ("c_gate_area", "c_diff_area", "c_node_floor")


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _force_parallel(monkeypatch):
    """Make even a 6-device inverter take the pooled extraction path."""
    monkeypatch.setattr(stage_delay, "PARALLEL_MIN_DEVICES", 0)
    monkeypatch.setattr(stage_delay, "PARALLEL_COLD_MIN_DEVICES", 0)
    monkeypatch.setattr(stage_delay, "available_cpus", lambda: 2)


def _result_bytes(result) -> str:
    return json.dumps(result.to_json(), sort_keys=True)


def _worst_metric(result) -> float:
    """One scalar per result: max delay (combinational) or min cycle."""
    return (
        result.max_delay
        if result.max_delay is not None
        else result.min_cycle
    )


class TestNominalParitySerial:
    """Symbolic-at-nominal == concrete, bytewise, for every zoo circuit."""

    @pytest.mark.parametrize(
        "name,make", parity_circuits(), ids=[n for n, _ in parity_circuits()]
    )
    def test_symbolic_matches_concrete(self, name, make):
        trace = Trace()
        net = make()
        tv = TimingAnalyzer(net, trace=trace)
        mcmm = tv.analyze_mcmm(
            [Scenario(name="nominal")], parametric=True
        )
        standalone = TimingAnalyzer(make()).analyze()
        assert _result_bytes(mcmm.result("nominal")) == _result_bytes(
            standalone
        ), f"{name}: symbolic evaluation diverged from concrete extraction"
        assert trace.counters.get("parametric_stage_evals", 0) > 0, (
            f"{name}: no stage was served by term evaluation -- the "
            "symbolic path was not exercised"
        )


class TestNominalParityPooled:
    """Same parity with pooled extraction forced on: the parametric
    source extracts through the worker pool, the scenario evaluates."""

    @pytest.mark.skipif(not _fork_available(), reason="fork not available")
    @pytest.mark.parametrize(
        "name,make", parity_circuits(), ids=[n for n, _ in parity_circuits()]
    )
    def test_pooled_symbolic_matches_serial_concrete(
        self, name, make, monkeypatch
    ):
        from repro.delay import shutdown_pool

        _force_parallel(monkeypatch)
        try:
            net = make()
            tv = TimingAnalyzer(net, workers=2)
            mcmm = tv.analyze_mcmm(
                [Scenario(name="nominal")], parametric=True
            )
            standalone = TimingAnalyzer(make()).analyze()
            assert _result_bytes(mcmm.result("nominal")) == _result_bytes(
                standalone
            ), f"{name}: pooled symbolic sweep diverged from serial concrete"
        finally:
            shutdown_pool()


class TestCornerSweepUsesTerms:
    def test_default_mcmm_is_parametric_under_strict_elmore(self):
        trace = Trace()
        net = ripple_adder(2)
        tv = TimingAnalyzer(net, trace=trace)
        tv.analyze_mcmm(corner_scenarios(net.tech))
        assert trace.counters.get("parametric_stage_evals", 0) > 0
        assert trace.counters.get("structural_runs", 0) == 1

    def test_parametric_false_never_evaluates_terms(self):
        trace = Trace()
        net = ripple_adder(2)
        tv = TimingAnalyzer(net, trace=trace)
        mcmm = tv.analyze_mcmm(
            corner_scenarios(net.tech), parametric=False
        )
        assert trace.counters.get("parametric_stage_evals", 0) == 0
        standalone = TimingAnalyzer(
            ripple_adder(2), tech=net.tech.corner("slow")
        ).analyze()
        assert _result_bytes(mcmm.result("slow")) == _result_bytes(standalone)

    def test_non_elmore_model_falls_back_to_concrete(self):
        trace = Trace()
        net = ripple_adder(2)
        tv = TimingAnalyzer(net, model="pr-max", trace=trace)
        mcmm = tv.analyze_mcmm(corner_scenarios(net.tech))
        assert trace.counters.get("parametric_stage_evals", 0) == 0
        standalone = TimingAnalyzer(
            ripple_adder(2), tech=net.tech.corner("fast"), model="pr-max"
        ).analyze()
        assert _result_bytes(mcmm.result("fast")) == _result_bytes(standalone)


class TestEvaluatorSurface:
    def test_evaluate_timing_requires_a_term(self):
        tv = TimingAnalyzer(inverter_chain(3))
        calc = tv.calculator
        stage = tv.stage_graph[0]
        arcs = calc.arcs(stage, None, frozenset())
        concrete = next(
            t for arc in arcs for t in (arc.rise, arc.fall) if t is not None
        )
        assert concrete.term is None
        with pytest.raises(ValueError, match="no parametric term"):
            evaluate_timing(calc, stage, concrete)

    def test_evaluate_arcs_none_on_concrete_input(self):
        tv = TimingAnalyzer(inverter_chain(3))
        calc = tv.calculator
        stage = tv.stage_graph[0]
        arcs = calc.arcs(stage, None, frozenset())
        assert evaluate_arcs(calc, stage, arcs) is None

    def test_symbolic_source_carries_terms(self):
        tv = TimingAnalyzer(inverter_chain(3))
        source = tv.calculator.parametric_source()
        stage = tv.stage_graph[0]
        arcs = source.arcs(stage, None, frozenset())
        timings = [
            t for arc in arcs for t in (arc.rise, arc.fall) if t is not None
        ]
        assert timings and all(t.term is not None for t in timings)
        evaluated = evaluate_arcs(tv.calculator, stage, arcs)
        assert [
            (t.delay, t.tau)
            for arc in evaluated
            for t in (arc.rise, arc.fall)
            if t is not None
        ] == [(t.delay, t.tau) for t in timings]

    def test_perturbed_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown delay-model parameter"):
            perturbed(NMOS4, "vdd", 0.05)

    def test_perturbed_scales_one_field(self):
        t2 = perturbed(NMOS4, "k_fall", 0.05)
        assert t2.k_fall == NMOS4.k_fall * 1.05
        assert t2.k_rise == NMOS4.k_rise


# A multiplier per delay parameter, tight enough that ratioed-logic ERC
# margins survive; replay parity must hold at *any* point, so the band
# only bounds how exotic the fuzzed technologies get.
_scales = st.fixed_dictionaries(
    {
        param: st.floats(
            min_value=0.85,
            max_value=1.15,
            allow_nan=False,
            allow_infinity=False,
        )
        for param in PARAMETERS
    }
)


def _scaled_tech(scales: dict) -> "NMOS4.__class__":
    return dataclasses.replace(
        NMOS4,
        **{p: getattr(NMOS4, p) * m for p, m in scales.items()},
    )


class TestRandomPointParity:
    """Hypothesis fuzz: extraction and evaluation agree bit-for-bit at
    random in-range technology points, not just the shipped corners."""

    @given(_scales)
    @settings(max_examples=20, deadline=None)
    def test_symbolic_matches_concrete_at_random_tech(self, scales):
        tech = _scaled_tech(scales)
        make = lambda: ripple_adder(2)  # noqa: E731
        try:
            tv = TimingAnalyzer(make(), tech=tech)
        except ReproError:
            assume(False)
        mcmm = tv.analyze_mcmm([Scenario(name="pt")], parametric=True)
        standalone = TimingAnalyzer(make(), tech=tech).analyze()
        assert _result_bytes(mcmm.result("pt")) == _result_bytes(standalone)


class TestMonotonicSanity:
    """Scaling every resistance (or every capacitance) parameter up can
    never make the worst path faster -- checked through term evaluation
    at the perturbed point, where a different path may win but the
    worst metric must still be monotone."""

    @given(
        st.floats(
            min_value=1.0, max_value=2.0,
            allow_nan=False, allow_infinity=False,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_delay_nondecreasing_in_resistance(self, factor):
        tech = dataclasses.replace(
            NMOS4,
            **{p: getattr(NMOS4, p) * factor for p in RESISTANCE_PARAMS},
        )
        tv = TimingAnalyzer(ripple_adder(2))
        mcmm = tv.analyze_mcmm(
            [Scenario(name="base"), Scenario(name="scaled", tech=tech)],
            parametric=True,
        )
        assert _worst_metric(mcmm.result("scaled")) >= _worst_metric(
            mcmm.result("base")
        )

    @given(
        st.floats(
            min_value=1.0, max_value=2.0,
            allow_nan=False, allow_infinity=False,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_delay_nondecreasing_in_capacitance(self, factor):
        tech = dataclasses.replace(
            NMOS4,
            **{p: getattr(NMOS4, p) * factor for p in CAPACITANCE_PARAMS},
        )
        tv = TimingAnalyzer(inverter_chain(6))
        mcmm = tv.analyze_mcmm(
            [Scenario(name="base"), Scenario(name="scaled", tech=tech)],
            parametric=True,
        )
        assert _worst_metric(mcmm.result("scaled")) >= _worst_metric(
            mcmm.result("base")
        )


class TestSensitivities:
    def test_explain_sensitivity_attaches_sorted_records(self):
        tv = TimingAnalyzer(ripple_adder(2))
        result = tv.analyze()
        explanation = tv.explain(
            result.paths[0].endpoint, result=result, sensitivity=True
        )
        records = explanation.sensitivities
        assert records is not None and records
        assert all(r.parameter in PARAMETERS for r in records)
        magnitudes = [abs(r.sensitivity) for r in records]
        assert magnitudes == sorted(magnitudes, reverse=True)
        # Making the dominant path's devices more resistive must slow it.
        assert records[0].sensitivity > 0
        for record in records:
            assert record.nominal == getattr(tv.tech, record.parameter)

    def test_explanation_without_sensitivity_has_none(self):
        tv = TimingAnalyzer(inverter_chain(4))
        result = tv.analyze()
        explanation = tv.explain(
            result.paths[0].endpoint, result=result
        )
        assert explanation.sensitivities is None
        assert explanation.to_json()["sensitivities"] is None

    def test_sensitivity_json_and_format(self):
        tv = TimingAnalyzer(inverter_chain(4))
        result = tv.analyze()
        explanation = tv.explain(
            result.paths[0].endpoint, result=result, sensitivity=True
        )
        payload = explanation.to_json()
        assert isinstance(payload["sensitivities"], list)
        row = payload["sensitivities"][0]
        assert set(row) == {"parameter", "nominal", "sensitivity"}
        assert "sensitivities" in explanation.format()

    def test_sensitivity_matches_manual_central_difference(self):
        tv = TimingAnalyzer(inverter_chain(4))
        result = tv.analyze()
        node = result.paths[0].endpoint
        explanation = tv.explain(node, result=result, sensitivity=True)
        record = next(
            r
            for r in explanation.sensitivities
            if r.parameter == "r_sq_enh_pulldown"
        )
        arrivals = {}
        for sign in (-1.0, 1.0):
            tech = perturbed(
                NMOS4, "r_sq_enh_pulldown", sign * SENSITIVITY_REL_STEP
            )
            side = TimingAnalyzer(inverter_chain(4), tech=tech).analyze()
            arrival = side.arrivals.get(node, explanation.transition)
            arrivals[sign] = arrival.time
        expected = (arrivals[1.0] - arrivals[-1.0]) / (
            2.0 * SENSITIVITY_REL_STEP
        )
        assert record.sensitivity == pytest.approx(expected, rel=1e-12)

    def test_mcmm_explain_sensitivity_passthrough(self):
        net = ripple_adder(2)
        tv = TimingAnalyzer(net)
        mcmm = tv.analyze_mcmm(corner_scenarios(net.tech))
        node = mcmm.result("slow").paths[0].endpoint
        explanation = mcmm.explain(node, sensitivity=True)
        assert explanation.sensitivities
        assert explanation.scenario == mcmm.dominant_corner(node)
