"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro import NMOS4, DeviceKind, Netlist
from repro.circuits import bus, inverter_chain, pass_chain, random_logic, ripple_adder
from repro.delay import RCTree, elmore_delay, lumped_delay, pr_moments
from repro.flow import infer_flow
from repro.netlist import sim_dumps, sim_loads
from repro.sim import SwitchSim, mos_current
from repro.stages import decompose

# ----------------------------------------------------------------------
# RC tree invariants.
# ----------------------------------------------------------------------
rc_values = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)
cap_values = st.floats(min_value=1e-16, max_value=1e-12, allow_nan=False)


@st.composite
def rc_trees(draw):
    """Random RC trees of 2-12 nodes (child attaches to a random earlier)."""
    n = draw(st.integers(min_value=1, max_value=11))
    tree = RCTree("root")
    names = ["root"]
    for i in range(n):
        parent = names[draw(st.integers(0, len(names) - 1))]
        name = f"n{i}"
        tree.add_child(parent, name, draw(rc_values), draw(cap_values))
        names.append(name)
    return tree


@given(rc_trees())
def test_elmore_nonnegative_and_bounded_by_lumped(tree):
    for node in tree.nodes:
        if node == tree.root:
            continue
        e = elmore_delay(tree, node)
        assert e >= 0.0
        assert e <= lumped_delay(tree, node) * (1 + 1e-9)


@given(rc_trees())
def test_pr_moment_ordering_everywhere(tree):
    for node in tree.nodes:
        if node == tree.root:
            continue
        t_r, t_dp, t_p = pr_moments(tree, node)
        assert t_r <= t_dp * (1 + 1e-9)
        assert t_dp <= t_p * (1 + 1e-9)


@given(rc_trees(), cap_values)
def test_elmore_monotone_under_added_cap(tree, extra):
    nodes = [n for n in tree.nodes if n != tree.root]
    target = nodes[-1]
    before = elmore_delay(tree, target)
    tree.add_cap(nodes[0], extra)
    assert elmore_delay(tree, target) >= before


@given(rc_trees())
def test_shared_resistance_symmetric_and_bounded(tree):
    nodes = tree.nodes
    for a in nodes:
        for b in nodes:
            s = tree.shared_resistance(a, b)
            assert s == tree.shared_resistance(b, a)
            assert s <= min(tree.r_root(a), tree.r_root(b)) + 1e-9


# ----------------------------------------------------------------------
# Device model invariants.
# ----------------------------------------------------------------------
volt = st.floats(min_value=-1.0, max_value=6.0, allow_nan=False)


@given(volt, volt, volt)
def test_device_antisymmetry(vg, vs, vd):
    w, l = 8e-6, 4e-6
    fwd = mos_current(NMOS4, DeviceKind.ENH, vg, vs, vd, w, l)[0]
    rev = mos_current(NMOS4, DeviceKind.ENH, vg, vd, vs, w, l)[0]
    assert math.isclose(fwd, -rev, rel_tol=1e-9, abs_tol=1e-15)


@given(volt, volt, volt)
def test_current_sign_follows_vds(vg, vs, vd):
    i = mos_current(NMOS4, DeviceKind.ENH, vg, vs, vd, 8e-6, 4e-6)[0]
    if vd > vs:
        assert i >= 0.0
    elif vd < vs:
        assert i <= 0.0
    else:
        assert i == 0.0


@given(st.floats(min_value=NMOS4.vt_enh + 0.05, max_value=6.0), volt, volt)
def test_more_gate_drive_more_current(vg, vs, vd):
    w, l = 8e-6, 4e-6
    base = mos_current(NMOS4, DeviceKind.ENH, vg, vs, vd, w, l)[0]
    more = mos_current(NMOS4, DeviceKind.ENH, vg + 0.5, vs, vd, w, l)[0]
    assert abs(more) >= abs(base) - 1e-15


# ----------------------------------------------------------------------
# Netlist / .sim round-trip.
# ----------------------------------------------------------------------
@st.composite
def small_netlists(draw):
    net = Netlist("prop")
    n_inputs = draw(st.integers(1, 4))
    inputs = [f"in{i}" for i in range(n_inputs)]
    net.set_input(*inputs)
    signals = list(inputs)
    n_dev = draw(st.integers(1, 12))
    for i in range(n_dev):
        gate = signals[draw(st.integers(0, len(signals) - 1))]
        out = f"w{i}"
        kind = draw(st.sampled_from(["inv", "pass"]))
        if kind == "inv":
            net.add_pullup(out)
            net.add_enh(gate, out, "gnd")
        else:
            src = signals[draw(st.integers(0, len(signals) - 1))]
            if src != out:
                net.add_enh(gate, src, out)
                net.add_node(out)
            else:  # pragma: no cover - name collision impossible
                continue
        if draw(st.booleans()):
            net.add_cap(out, draw(st.floats(1e-16, 1e-13)))
        signals.append(out)
    return net


@given(small_netlists())
@settings(max_examples=40)
def test_sim_roundtrip_preserves_structure(net):
    restored = sim_loads(sim_dumps(net))
    assert set(restored.nodes) == set(net.nodes)
    assert len(restored.devices) == len(net.devices)
    assert restored.inputs == net.inputs
    sig = lambda n: sorted(
        (d.kind.value, d.gate, d.source, d.drain) for d in n.devices.values()
    )
    assert sig(restored) == sig(net)
    for name, node in net.nodes.items():
        assert math.isclose(
            restored.node(name).cap, node.cap, rel_tol=1e-6, abs_tol=1e-20
        )


@given(small_netlists())
@settings(max_examples=40)
def test_decomposition_partitions_any_netlist(net):
    graph = decompose(net)
    seen = set()
    devices = []
    for stage in graph:
        assert not (stage.nodes & seen)
        seen |= stage.nodes
        devices.extend(stage.device_names)
    assert sorted(devices) == sorted(net.devices)
    for node in net.nodes:
        if not net.is_boundary(node) and net.channel_devices(node):
            assert node in seen


@given(small_netlists())
@settings(max_examples=40)
def test_flow_inference_total_and_consistent(net):
    report = infer_flow(net)
    # Every device ends resolved; the accounting adds up.
    assert all(d.flow.resolved for d in net.devices.values())
    assert report.auto_resolved + len(report.hinted) + len(
        report.unresolved
    ) == report.pass_candidates


# ----------------------------------------------------------------------
# Functional: ripple adder against Python integers.
# ----------------------------------------------------------------------
@given(
    st.integers(0, 255),
    st.integers(0, 255),
    st.integers(0, 1),
)
@settings(max_examples=25, deadline=None)
def test_ripple_adder_matches_python(a, b, cin):
    width = 8
    net = ripple_adder(width)
    sim = SwitchSim(net)
    sim.set_word(bus("a", width), a)
    sim.set_word(bus("b", width), b)
    sim.set_input("cin", cin)
    sim.settle()
    total = a + b + cin
    assert sim.word(bus("sum", width)) == total & 0xFF
    assert sim.value("cout") == total >> 8


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_random_logic_generator_deterministic(seed):
    n1 = random_logic(120, seed=seed)
    n2 = random_logic(120, seed=seed)
    assert sim_dumps(n1) == sim_dumps(n2)


@given(st.integers(1, 10))
@settings(max_examples=10, deadline=None)
def test_pass_chain_transmits_any_length(n):
    net = pass_chain(n)
    sim = SwitchSim(net)
    sim.step({"d": 1, "sel": 1})
    assert sim.value(f"p{n-1}") == 1
    sim.step({"d": 0})
    assert sim.value(f"p{n-1}") == 0


# ----------------------------------------------------------------------
# Static analysis invariants.
# ----------------------------------------------------------------------
@given(st.integers(1, 8))
@settings(max_examples=8, deadline=None)
def test_arrivals_monotone_along_chain(n):
    from repro import TimingAnalyzer

    result = TimingAnalyzer(inverter_chain(n)).analyze()
    times = [result.arrival_of(f"n{i}") for i in range(n)]
    assert all(t is not None for t in times)
    assert times == sorted(times)
