"""The explainability invariant: provenance terms sum to the report.

The acceptance bar for the provenance layer is exactness, not
plausibility: for *every* circuit generator, the sum of the delay terms
in an explanation equals the reported arrival time bit-for-bit (no
tolerance).  These tests assert that for every endpoint of every
generated circuit, in both analysis modes, serial and parallel.
"""

import pytest

from repro import TimingAnalyzer
from repro.bench.perf import parity_circuits
from repro.core import ARC_FAMILIES, explain_arrival, validate_report
from repro.core.report import REPORT_SCHEMA
from repro.errors import TimingError

CIRCUITS = parity_circuits()
IDS = [name for name, _build in CIRCUITS]


@pytest.fixture(scope="module")
def analyses():
    """One (analyzer, result) per circuit generator, analyzed once."""
    cache = {}
    for name, build in CIRCUITS:
        tv = TimingAnalyzer(build())
        cache[name] = (tv, tv.analyze())
    return cache


@pytest.mark.parametrize("name", IDS)
def test_critical_path_explained_exactly(name, analyses):
    """Sum of provenance deltas == critical-path arrival, bit-for-bit."""
    tv, result = analyses[name]
    if result.critical_path is None:
        pytest.skip(f"{name}: no critical path (nothing to explain)")
    path = result.critical_path
    explanation = tv.explain(path.endpoint, path.transition, result=result)
    assert explanation.verify()
    assert explanation.total == path.arrival
    assert explanation.arrival == path.arrival
    assert explanation.endpoint == path.endpoint
    if result.mode == "two-phase":
        assert explanation.phase in result.clock_verification.phases


@pytest.mark.parametrize("name", IDS)
def test_every_recorded_arrival_explained_exactly(name, analyses):
    """Exactness holds for every node and transition, not just the worst.

    Combinational circuits: every entry in the arrival map.  Two-phase
    circuits: every entry of every phase's arrival map.
    """
    tv, result = analyses[name]
    slope = tv.calculator.slope
    if result.arrivals is not None:
        maps = [(None, result.arrivals)]
    else:
        maps = [
            (phase, phase_result.arrivals)
            for phase, phase_result in result.clock_verification.phases.items()
        ]
    checked = 0
    for phase, arrivals in maps:
        for arrival in arrivals.items():
            explanation = explain_arrival(
                arrivals, slope, arrival.node, arrival.transition, phase=phase
            )
            # explain_arrival raises TimingError on any bit of divergence;
            # reaching here already proves the chain.  Assert anyway.
            assert explanation.total == arrival.time
            assert explanation.records[0].kind == "source"
            assert all(r.kind in ARC_FAMILIES for r in explanation.records)
            checked += 1
    assert checked > 0


@pytest.mark.parametrize("name", IDS)
def test_explanations_identical_serial_vs_parallel(name):
    """The causal chain is independent of the extraction strategy."""
    build = dict(CIRCUITS)[name]
    serial_tv = TimingAnalyzer(build(), workers=1)
    serial = serial_tv.analyze()
    pooled_tv = TimingAnalyzer(build(), workers=2)
    pooled_tv.calculator.all_arcs(parallel=True, workers=2)
    pooled = pooled_tv.analyze()
    if serial.critical_path is None:
        pytest.skip(f"{name}: no critical path")
    endpoint = serial.critical_path.endpoint
    transition = serial.critical_path.transition
    a = serial_tv.explain(endpoint, transition, result=serial)
    b = pooled_tv.explain(endpoint, transition, result=pooled)
    assert a.to_json() == b.to_json()


class TestExplanationShape:
    def test_worst_transition_is_default(self, analyses):
        tv, result = analyses["ripple_adder"]
        worst = result.arrivals.worst("cout")
        explanation = tv.explain("cout", result=result)
        assert explanation.transition == worst.transition
        assert explanation.arrival == worst.time

    def test_source_record_carries_seed_time(self, analyses):
        tv, result = analyses["inverter_chain"]
        explanation = tv.explain(result.critical_path.endpoint, result=result)
        source = explanation.records[0]
        assert source.kind == "source"
        assert source.delta == source.time
        assert source.stage_index is None
        assert source.trigger is None

    def test_hop_records_carry_model_terms(self, analyses):
        tv, result = analyses["inverter_chain"]
        explanation = tv.explain(result.critical_path.endpoint, result=result)
        for record in explanation.records[1:]:
            assert record.kind == "gate"  # inverter chain: all gate arcs
            assert record.delta == record.intrinsic_delay + record.slope_delay
            assert record.stage_index is not None
            assert record.trigger is not None
            assert record.input_slew > 0

    def test_all_arc_families_observed(self, analyses):
        """Across the generator zoo, every arc family explains something.

        (Not per circuit: e.g. a pure pass chain's *worst* arrivals can
        all be select-triggered, so its channel arcs never win.)
        """
        kinds = set()
        for tv, result in analyses.values():
            if result.arrivals is not None:
                maps = [result.arrivals]
            else:
                maps = [
                    p.arrivals
                    for p in result.clock_verification.phases.values()
                ]
            for arrivals in maps:
                for arrival in arrivals.items():
                    explanation = explain_arrival(
                        arrivals, tv.calculator.slope,
                        arrival.node, arrival.transition,
                    )
                    kinds.update(r.kind for r in explanation.records)
        assert kinds == {"source", "gate", "transfer", "channel"}

    def test_format_reports_exact(self, analyses):
        tv, result = analyses["full_adder"]
        text = tv.explain(result.critical_path.endpoint, result=result).format()
        assert "exact" in text
        assert "MISMATCH" not in text

    def test_json_matches_schema(self, analyses):
        tv, result = analyses["toy_cpu"]
        payload = tv.explain(result.critical_path.endpoint, result=result).to_json()
        validate_report(payload, REPORT_SCHEMA["$defs"]["explanation"])
        assert payload["exact"] is True

    def test_unknown_node_raises(self, analyses):
        tv, result = analyses["inverter"]
        with pytest.raises(TimingError):
            tv.explain("no_such_node", result=result)

    def test_two_phase_picks_worst_phase(self, analyses):
        tv, result = analyses["register_bit"]
        verification = result.clock_verification
        assert verification is not None
        path = result.critical_path
        explanation = tv.explain(path.endpoint, path.transition, result=result)
        worst = max(
            (
                p
                for p in verification.phases
                if verification.phases[p].arrivals.get(
                    path.endpoint, path.transition
                )
                is not None
            ),
            key=lambda p: verification.phases[p]
            .arrivals.get(path.endpoint, path.transition)
            .time,
        )
        assert explanation.phase == worst
