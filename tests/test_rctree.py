"""Tests for the RC tree and first-moment metrics (repro.delay)."""

import pytest

from repro.delay import RCTree, elmore_delay, lumped_delay, pr_bounds, pr_moments
from repro.errors import ReproError

K = 1e3
F = 1e-15


def chain(n: int, r: float = 10 * K, c: float = 10 * F) -> RCTree:
    tree = RCTree("root")
    prev = "root"
    for i in range(n):
        name = f"n{i}"
        tree.add_child(prev, name, r, c)
        prev = name
    return tree


class TestConstruction:
    def test_incremental_build(self):
        tree = chain(3)
        assert len(tree) == 4
        assert tree.r_root("n2") == pytest.approx(30 * K)

    def test_duplicate_node_rejected(self):
        tree = chain(1)
        with pytest.raises(ReproError):
            tree.add_child("root", "n0", 1.0, 0.0)

    def test_unknown_parent_rejected(self):
        with pytest.raises(ReproError):
            RCTree("root").add_child("nope", "x", 1.0, 0.0)

    def test_negative_values_rejected(self):
        tree = RCTree("root")
        with pytest.raises(ReproError):
            tree.add_child("root", "x", -1.0, 0.0)

    def test_add_cap(self):
        tree = chain(1)
        tree.add_cap("n0", 5 * F)
        assert tree.cap("n0") == pytest.approx(15 * F)

    def test_total_cap(self):
        assert chain(4).total_cap() == pytest.approx(40 * F)


class TestFromGraph:
    def test_spanning_tree_drops_parallel_edges(self):
        edges = [("root", "a", 1 * K), ("root", "a", 2 * K), ("a", "b", 3 * K)]
        tree = RCTree.from_graph("root", edges, {"a": F, "b": F})
        assert tree.r_root("b") == pytest.approx(4 * K)

    def test_unreachable_nodes_excluded(self):
        edges = [("root", "a", 1 * K), ("x", "y", 1 * K)]
        tree = RCTree.from_graph("root", edges, {})
        assert "y" not in tree

    def test_cycle_becomes_tree(self):
        edges = [("root", "a", 1 * K), ("a", "b", 1 * K), ("b", "root", 1 * K)]
        tree = RCTree.from_graph("root", edges, {})
        assert len(tree) == 3  # no duplicate, no error


class TestPaths:
    def test_path_to_root(self):
        tree = chain(3)
        assert tree.path_to_root("n2") == ["n2", "n1", "n0", "root"]

    def test_shared_resistance_on_chain(self):
        tree = chain(3)
        assert tree.shared_resistance("n0", "n2") == pytest.approx(10 * K)
        assert tree.shared_resistance("n2", "n2") == pytest.approx(30 * K)

    def test_shared_resistance_across_branches(self):
        tree = RCTree("root")
        tree.add_child("root", "trunk", 5 * K, 0.0)
        tree.add_child("trunk", "left", 1 * K, F)
        tree.add_child("trunk", "right", 2 * K, F)
        assert tree.shared_resistance("left", "right") == pytest.approx(5 * K)


class TestElmore:
    def test_single_rc(self):
        tree = chain(1)
        assert elmore_delay(tree, "n0") == pytest.approx(10 * K * 10 * F)

    def test_chain_formula(self):
        # sum_i C * (i * R) for i = 1..n
        tree = chain(4)
        expected = sum((i + 1) * 10 * K * 10 * F for i in range(4))
        assert elmore_delay(tree, "n3") == pytest.approx(expected)

    def test_quadratic_growth(self):
        d4 = elmore_delay(chain(4), "n3")
        d8 = elmore_delay(chain(8), "n7")
        # n(n+1)/2 scaling: 36/10 = 3.6x
        assert d8 / d4 == pytest.approx(36 / 10)

    def test_side_branch_loads_path(self):
        tree = chain(2)
        base = elmore_delay(tree, "n1")
        tree.add_child("n0", "branch", 1 * K, 20 * F)
        loaded = elmore_delay(tree, "n1")
        # Branch cap counts with the shared resistance up to n0.
        assert loaded == pytest.approx(base + 10 * K * 20 * F)

    def test_downstream_cap_does_not_slow_upstream_more_than_shared(self):
        tree = chain(3)
        d_mid_before = elmore_delay(tree, "n0")
        tree.add_cap("n2", 100 * F)
        d_mid_after = elmore_delay(tree, "n0")
        assert d_mid_after == pytest.approx(d_mid_before + 10 * K * 100 * F)

    def test_lumped_upper_bounds_elmore(self):
        tree = chain(6)
        assert lumped_delay(tree, "n5") >= elmore_delay(tree, "n5")

    def test_elmore_monotone_in_added_cap(self):
        tree = chain(3)
        before = elmore_delay(tree, "n2")
        tree.add_cap("n1", 5 * F)
        assert elmore_delay(tree, "n2") > before


class TestPenfieldRubinstein:
    def test_moment_ordering(self):
        tree = chain(5)
        t_r, t_dp, t_p = pr_moments(tree, "n4")
        assert t_r <= t_dp <= t_p

    def test_measurement_node_matters(self):
        tree = chain(5)
        _, t_dp_mid, _ = pr_moments(tree, "n1")
        _, t_dp_end, _ = pr_moments(tree, "n4")
        assert t_dp_end > t_dp_mid

    def test_elmore_agrees_with_tdp(self):
        tree = chain(4)
        _, t_dp, _ = pr_moments(tree, "n3")
        assert t_dp == pytest.approx(elmore_delay(tree, "n3"))

    def test_bounds_bracket(self):
        bounds = pr_bounds(chain(5), "n4", 0.5)
        assert bounds.lower <= bounds.upper
        assert bounds.t_r <= bounds.elmore <= bounds.t_p

    def test_higher_fraction_takes_longer(self):
        tree = chain(3)
        b50 = pr_bounds(tree, "n2", 0.5)
        b90 = pr_bounds(tree, "n2", 0.9)
        assert b90.upper > b50.upper
        assert b90.lower > b50.lower

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            pr_bounds(chain(2), "n1", 1.0)

    def test_single_node_chain_bounds_tight(self):
        # For a single RC the tree is a single pole: T_R = T_DP = T_P.
        bounds = pr_bounds(chain(1), "n0", 0.5)
        assert bounds.t_r == pytest.approx(bounds.t_p)
