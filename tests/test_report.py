"""Tests for reports (repro.core.report): text helpers and JSON schema."""

import json

import pytest

from repro import Netlist, ReportSchemaError, TimingAnalyzer
from repro.circuits import inverter_chain, ripple_adder, shift_register
from repro.core import (
    REPORT_SCHEMA,
    REPORT_SCHEMA_VERSION,
    design_fingerprint,
    format_ns,
    format_table,
    result_to_json,
    schema_markdown,
    slack_histogram,
    validate_report,
)
from repro.stages import decompose


class TestFormatNs:
    def test_basic(self):
        assert format_ns(1.5e-9) == "1.500 ns"

    def test_digits(self):
        assert format_ns(1.23456e-9, digits=1) == "1.2 ns"


class TestFingerprint:
    def test_mentions_counts(self):
        net = inverter_chain(3)
        text = design_fingerprint(net, decompose(net))
        assert "6 devices" in text
        assert "3 stages" in text
        assert "restoring: 3" in text


class TestSlackHistogram:
    def test_bins_cover_all_internal_arrivals(self):
        result = TimingAnalyzer(ripple_adder(4)).analyze()
        bins = slack_histogram(result.arrivals, bins=8)
        assert len(bins) == 8
        total = sum(count for _lo, _hi, count in bins)
        internal_nodes = {
            a.node for a in result.arrivals.items() if a.pred is not None
        }
        assert total == len(internal_nodes)

    def test_bin_edges_monotone(self):
        result = TimingAnalyzer(ripple_adder(3)).analyze()
        bins = slack_histogram(result.arrivals, bins=5)
        for lo, hi, _count in bins:
            assert hi > lo

    def test_empty_arrivals(self):
        from repro.core.arrival import ArrivalMap

        assert slack_histogram(ArrivalMap()) == []


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["x", "1"], ["longer", "22"]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_wide_cells_expand_columns(self):
        text = format_table(["h"], [["wider-than-header"]])
        header_line, sep, row = text.splitlines()
        assert len(sep) >= len("wider-than-header")


class TestJsonReport:
    def test_combinational_payload_validates(self):
        result = TimingAnalyzer(ripple_adder(4)).analyze()
        payload = result.to_json()
        validate_report(payload)
        assert payload["schema"] == "repro-timing-report"
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["mode"] == "combinational"
        assert payload["clock"] is None
        assert payload["max_delay"] == result.max_delay
        assert payload["arrival_count"] == len(result.arrivals)
        assert len(payload["paths"]) == len(result.paths)

    def test_two_phase_payload_validates(self):
        result = TimingAnalyzer(shift_register(3)).analyze()
        payload = result.to_json()
        validate_report(payload)
        assert payload["mode"] == "two-phase"
        assert payload["arrival_count"] is None
        clock = payload["clock"]
        assert clock["min_cycle"] == result.min_cycle
        assert [p["phase"] for p in clock["phases"]] == ["phi1", "phi2"]
        for phase in clock["phases"]:
            assert phase["capture_nodes"] == sorted(phase["capture_nodes"])

    def test_path_steps_reproduce_critical_path(self):
        result = TimingAnalyzer(ripple_adder(3)).analyze()
        payload = result.to_json()
        path = payload["paths"][0]
        assert path["endpoint"] == result.critical_path.endpoint
        assert path["arrival"] == result.critical_path.arrival
        assert path["steps"][-1]["time"] == path["arrival"]

    def test_wall_time_omitted_by_default(self):
        result = TimingAnalyzer(inverter_chain(3)).analyze()
        assert "analysis_seconds" not in result.to_json()
        with_time = result.to_json(include_wall_time=True)
        assert with_time["analysis_seconds"] == result.analysis_seconds
        validate_report(with_time)

    def test_byte_identical_serial_vs_parallel(self):
        serial_tv = TimingAnalyzer(shift_register(4), workers=1)
        serial = serial_tv.analyze()
        pooled_tv = TimingAnalyzer(shift_register(4), workers=2)
        pooled_tv.calculator.all_arcs(parallel=True, workers=2)
        pooled = pooled_tv.analyze()
        dumps = lambda r: json.dumps(r.to_json(), sort_keys=True)
        assert dumps(serial) == dumps(pooled)

    def test_deterministic_across_runs(self):
        dumps = lambda: json.dumps(
            TimingAnalyzer(ripple_adder(4)).analyze().to_json(),
            sort_keys=True,
        )
        assert dumps() == dumps()

    def test_empty_netlist(self):
        # Declared I/O but zero devices: the analysis degenerates
        # gracefully and the report still validates.
        net = Netlist("empty")
        net.add_node("a")
        net.add_node("out")
        net.set_input("a")
        net.set_output("out")
        result = TimingAnalyzer(net, run_erc=False).analyze()
        payload = result.to_json()
        validate_report(payload)
        assert payload["netlist"]["devices"] == 0
        assert payload["netlist"]["stages"] == 0
        assert payload["max_delay"] == 0.0
        assert payload["paths"] == []

    def test_zero_arc_stage(self):
        # A pass switch between two driven inputs forms a stage that
        # yields no timing arcs; the report must not choke on it.
        net = Netlist("zeroarc")
        for node in ("a", "b", "g"):
            net.add_node(node)
        net.set_input("a", "b", "g")
        net.add_enh("g", "a", "b", name="sw")
        tv = TimingAnalyzer(net, run_erc=False)
        assert tv.calculator.all_arcs() == []
        assert len(tv.stage_graph) == 1
        payload = tv.analyze().to_json()
        validate_report(payload)
        assert payload["netlist"]["stages"] == 1
        assert payload["max_delay"] == 0.0


class TestValidateReport:
    def test_missing_required_field(self):
        payload = TimingAnalyzer(inverter_chain(2)).analyze().to_json()
        del payload["max_delay"]
        with pytest.raises(ReportSchemaError, match="max_delay"):
            validate_report(payload)

    def test_unexpected_field(self):
        payload = TimingAnalyzer(inverter_chain(2)).analyze().to_json()
        payload["surprise"] = 1
        with pytest.raises(ReportSchemaError, match="surprise"):
            validate_report(payload)

    def test_wrong_type(self):
        payload = TimingAnalyzer(inverter_chain(2)).analyze().to_json()
        payload["cut_arc_count"] = "zero"
        with pytest.raises(ReportSchemaError, match="cut_arc_count"):
            validate_report(payload)

    def test_bool_is_not_a_number(self):
        payload = TimingAnalyzer(inverter_chain(2)).analyze().to_json()
        payload["max_delay"] = True  # bool must not satisfy "number"
        with pytest.raises(ReportSchemaError, match="max_delay"):
            validate_report(payload)

    def test_bad_enum(self):
        payload = TimingAnalyzer(inverter_chain(2)).analyze().to_json()
        payload["mode"] = "quantum"
        with pytest.raises(ReportSchemaError, match="mode"):
            validate_report(payload)

    def test_bad_const(self):
        payload = TimingAnalyzer(inverter_chain(2)).analyze().to_json()
        payload["schema"] = "other-schema"
        with pytest.raises(ReportSchemaError, match="schema"):
            validate_report(payload)

    def test_nested_item_error_is_located(self):
        payload = TimingAnalyzer(inverter_chain(2)).analyze().to_json()
        payload["paths"][0]["steps"][0]["transition"] = "sideways"
        with pytest.raises(ReportSchemaError, match=r"paths\[0\].steps\[0\]"):
            validate_report(payload)

    def test_subschema_validation(self):
        result = TimingAnalyzer(ripple_adder(2)).analyze()
        path = result.to_json()["paths"][0]
        validate_report(path, REPORT_SCHEMA["$defs"]["path"])

    def test_free_function_matches_method(self):
        result = TimingAnalyzer(inverter_chain(2)).analyze()
        assert result.to_json() == result_to_json(result)


class TestSchemaMarkdown:
    def test_documents_every_field_and_def(self):
        text = schema_markdown()
        for name in REPORT_SCHEMA["properties"]:
            assert f"`{name}`" in text, name
        for defname in REPORT_SCHEMA["$defs"]:
            assert f"## {defname}" in text, defname
        assert REPORT_SCHEMA_VERSION in text

    def test_marked_generated(self):
        assert "GENERATED" in schema_markdown()
