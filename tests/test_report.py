"""Tests for report helpers (repro.core.report)."""

import pytest

from repro import TimingAnalyzer
from repro.circuits import inverter_chain, ripple_adder
from repro.core import (
    design_fingerprint,
    format_ns,
    format_table,
    slack_histogram,
)
from repro.stages import decompose


class TestFormatNs:
    def test_basic(self):
        assert format_ns(1.5e-9) == "1.500 ns"

    def test_digits(self):
        assert format_ns(1.23456e-9, digits=1) == "1.2 ns"


class TestFingerprint:
    def test_mentions_counts(self):
        net = inverter_chain(3)
        text = design_fingerprint(net, decompose(net))
        assert "6 devices" in text
        assert "3 stages" in text
        assert "restoring: 3" in text


class TestSlackHistogram:
    def test_bins_cover_all_internal_arrivals(self):
        result = TimingAnalyzer(ripple_adder(4)).analyze()
        bins = slack_histogram(result.arrivals, bins=8)
        assert len(bins) == 8
        total = sum(count for _lo, _hi, count in bins)
        internal_nodes = {
            a.node for a in result.arrivals.items() if a.pred is not None
        }
        assert total == len(internal_nodes)

    def test_bin_edges_monotone(self):
        result = TimingAnalyzer(ripple_adder(3)).analyze()
        bins = slack_histogram(result.arrivals, bins=5)
        for lo, hi, _count in bins:
            assert hi > lo

    def test_empty_arrivals(self):
        from repro.core.arrival import ArrivalMap

        assert slack_histogram(ArrivalMap()) == []


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["x", "1"], ["longer", "22"]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_wide_cells_expand_columns(self):
        text = format_table(["h"], [["wider-than-header"]])
        header_line, sep, row = text.splitlines()
        assert len(sep) >= len("wider-than-header")
