"""Tests for degraded-mode analysis (repro.robust + analyzer policies)."""

import pytest

from repro import (
    ElectricalRuleError,
    Netlist,
    ReproError,
    TimingAnalyzer,
    TimingError,
    UM,
)
from repro import robust
from repro.circuits import inverter_chain
from repro.core import validate_report
from repro.core.report import REPORT_SCHEMA_VERSION


def chain_with_ratio_error(n: int = 4, bad: int = 1) -> Netlist:
    """An n-inverter chain whose ``bad``-th stage violates the ratio rule.

    Every other stage is a correctly ratioed inverter, so exactly one
    stage carries an error-severity ERC violation.
    """
    net = Netlist("degraded-chain")
    net.set_input("n0")
    for i in range(n):
        src, out = f"n{i}", f"n{i + 1}"
        if i == bad:
            # Pull-up as strong as the pull-down: ratio 1 < 3.
            net.add_pullup(out, w=8 * UM, l=4 * UM)
            net.add_enh(src, out, "gnd", w=8 * UM, l=4 * UM)
        else:
            net.add_pullup(out)
            net.add_enh(src, out, "gnd")
    net.set_output(f"n{n}")
    return net


class TestPolicyVocabulary:
    def test_policies_ordered_by_tolerance(self):
        assert robust.ERROR_POLICIES == (
            robust.STRICT,
            robust.QUARANTINE,
            robust.BEST_EFFORT,
        )

    def test_validate_policy_passthrough(self):
        for policy in robust.ERROR_POLICIES:
            assert robust.validate_policy(policy) == policy

    def test_validate_policy_rejects_unknown(self):
        with pytest.raises(ReproError, match="unknown error policy"):
            robust.validate_policy("lenient")

    def test_analyzer_rejects_unknown_policy(self):
        with pytest.raises(ReproError, match="unknown error policy"):
            TimingAnalyzer(inverter_chain(2), on_error="bogus")

    def test_diagnostic_str_and_json(self):
        diag = robust.Diagnostic(
            code="ratio",
            severity="error",
            subject="n2",
            stage=1,
            action="quarantined",
            message="pull-up too strong",
        )
        text = str(diag)
        assert "ratio" in text and "n2" in text and "stage 1" in text
        assert diag.to_json()["action"] == "quarantined"

    def test_coverage_accounting(self):
        cov = robust.Coverage(
            stages_total=4,
            stages_analyzed=3,
            devices_total=8,
            devices_analyzed=6,
            nodes_total=10,
            nodes_analyzed=9,
        )
        assert not cov.complete
        assert cov.stages_quarantined == 1
        assert cov.devices_quarantined == 2
        assert cov.device_fraction == pytest.approx(0.75)
        assert "3/4 stages" in cov.summary()
        assert cov.to_json()["complete"] is False

    def test_complete_coverage_summary(self):
        cov = robust.Coverage(2, 2, 4, 4, 5, 5)
        assert cov.complete
        assert cov.summary().startswith("complete")


class TestStrictPolicy:
    def test_strict_is_default_and_raises(self):
        net = chain_with_ratio_error()
        with pytest.raises(ElectricalRuleError) as excinfo:
            TimingAnalyzer(net)
        assert excinfo.value.violations
        assert any(v.code == "ratio" for v in excinfo.value.errors)

    def test_clean_run_reports_complete_coverage(self):
        result = TimingAnalyzer(inverter_chain(3)).analyze()
        assert result.policy == robust.STRICT
        assert result.diagnostics == []
        assert result.coverage is not None and result.coverage.complete


class TestQuarantinePolicy:
    def test_degraded_end_to_end(self):
        """The ISSUE's acceptance scenario: one broken stage out of four.

        Under ``quarantine`` the analysis completes, the broken stage is
        excised (coverage < 100%), a typed diagnostic names the ERC rule,
        and the JSON report validates against the current schema.
        """
        net = chain_with_ratio_error(n=4, bad=1)
        tv = TimingAnalyzer(net, on_error=robust.QUARANTINE)
        result = tv.analyze()

        assert result.policy == robust.QUARANTINE
        assert result.coverage is not None
        assert not result.coverage.complete
        assert result.coverage.device_fraction < 1.0
        assert result.coverage.stages_quarantined >= 1

        quarantined = [
            d for d in result.diagnostics if d.action == "quarantined"
        ]
        assert quarantined
        assert any(d.code == "ratio" for d in quarantined)
        assert all(d.stage is not None for d in quarantined)

        payload = result.to_json()
        assert payload["schema_version"] == REPORT_SCHEMA_VERSION == "1.3.0"
        validate_report(payload)
        assert payload["diagnostics"]["policy"] == "quarantine"
        assert payload["diagnostics"]["records"]
        assert payload["diagnostics"]["coverage"]["complete"] is False

    def test_same_netlist_strict_raises(self):
        with pytest.raises(ElectricalRuleError):
            TimingAnalyzer(chain_with_ratio_error())

    def test_healthy_stages_still_timed(self):
        net = chain_with_ratio_error(n=4, bad=3)
        result = TimingAnalyzer(net, on_error=robust.QUARANTINE).analyze()
        # Stages upstream of the quarantined one still get arrivals.
        assert result.arrival_of("n3") is not None
        assert result.arrival_of("n4") is None

    def test_text_report_mentions_policy_and_coverage(self):
        net = chain_with_ratio_error()
        report = TimingAnalyzer(net, on_error=robust.QUARANTINE).analyze().report()
        assert "policy" in report and "quarantine" in report
        assert "coverage" in report
        assert "diag" in report

    def test_explain_quarantined_node_names_cause(self):
        net = chain_with_ratio_error(n=4, bad=1)
        tv = TimingAnalyzer(net, on_error=robust.QUARANTINE)
        result = tv.analyze()
        with pytest.raises(TimingError, match="quarantined"):
            tv.explain("n2", result=result)

    def test_explain_healthy_node_still_works(self):
        net = chain_with_ratio_error(n=4, bad=3)
        tv = TimingAnalyzer(net, on_error=robust.QUARANTINE)
        result = tv.analyze()
        explanation = tv.explain("n2", result=result)
        assert explanation.records


class TestBestEffortPolicy:
    def test_no_primary_inputs_downgraded(self):
        net = Netlist("no-inputs")
        net.add_pullup("y")
        net.add_enh("y", "z", "gnd")
        net.add_pullup("z")
        tv = TimingAnalyzer(net, on_error=robust.BEST_EFFORT, run_erc=False)
        result = tv.analyze()
        assert any(
            d.code == "no-primary-inputs" and d.action == "downgraded"
            for d in result.diagnostics
        )
        assert result.paths == []

    def test_no_primary_inputs_still_raises_under_quarantine(self):
        net = Netlist("no-inputs")
        net.add_pullup("y")
        net.add_enh("y", "z", "gnd")
        net.add_pullup("z")
        tv = TimingAnalyzer(net, on_error=robust.QUARANTINE, run_erc=False)
        with pytest.raises(TimingError, match="no primary"):
            tv.analyze()


class TestElectricalRuleErrorPayload:
    def test_violations_carry_warnings_too(self):
        """The bugfix: the raised error carries *all* violations."""
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("ghost", "a", "gnd")  # floating-gate error
        net.add_node("orphan")  # undriven-node warning
        with pytest.raises(ElectricalRuleError) as excinfo:
            TimingAnalyzer(net)
        exc = excinfo.value
        assert {v.severity for v in exc.violations} == {"error", "warning"}
        assert any(v.code == "floating-gate" for v in exc.errors)
        assert any(v.code == "undriven-node" for v in exc.warnings)

    def test_default_violations_empty(self):
        exc = ElectricalRuleError("plain")
        assert exc.violations == ()
        assert exc.errors == () and exc.warnings == ()
