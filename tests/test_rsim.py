"""Tests for the event-driven timing simulator (repro.sim.rsim)."""

import pytest

from repro import Netlist, SimulationError, TimingAnalyzer
from repro.circuits import (
    add_inverter,
    bus,
    full_adder,
    inverter_chain,
    mux2,
    pass_chain,
    ripple_adder,
)
from repro.sim import RSim, X


class TestFunctional:
    def test_inverter_chain_values(self):
        net = inverter_chain(3)
        rsim = RSim(net)
        rsim.run_vector({"a": 1})
        assert rsim.value("n0") == 0
        assert rsim.value("n1") == 1
        assert rsim.value("n2") == 0

    def test_full_adder_all_vectors(self):
        net = full_adder()
        rsim = RSim(net)
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    rsim.run_vector({"a": a, "b": b, "cin": cin})
                    total = a + b + cin
                    assert rsim.value("sum") == total & 1
                    assert rsim.value("cout") == total >> 1

    def test_ripple_adder_word(self):
        width = 4
        net = ripple_adder(width)
        rsim = RSim(net)
        rsim.drive_word(bus("a", width), 9)
        rsim.drive_word(bus("b", width), 5)
        rsim.drive("cin", 0)
        rsim.settle()
        assert rsim.word(bus("sum", width)) == 14

    def test_mux(self):
        rsim = RSim(mux2())
        rsim.run_vector({"a": 1, "b": 0, "sel": 1})
        assert rsim.value("out") == 1
        rsim.run_vector({"sel": 0})
        assert rsim.value("out") == 0


class TestTiming:
    def test_time_advances_with_events(self):
        net = inverter_chain(4)
        rsim = RSim(net)
        rsim.run_vector({"a": 0})
        start = rsim.now
        rsim.drive("a", 1)
        settle = rsim.settle()
        assert settle > start

    def test_longer_chain_settles_later(self):
        def settle_time(n):
            rsim = RSim(inverter_chain(n))
            rsim.run_vector({"a": 0})
            since = rsim.now
            rsim.drive("a", 1)
            rsim.settle()
            return rsim.settle_time_of(f"n{n-1}", since) - since

        assert settle_time(6) > settle_time(2)

    def test_pass_chain_slower_than_single_switch(self):
        def transfer_time(n):
            rsim = RSim(pass_chain(n))
            rsim.run_vector({"sel": 1, "d": 0})
            since = rsim.now
            rsim.drive("d", 1)
            rsim.settle()
            return rsim.settle_time_of(f"p{n-1}", since) - since

        assert transfer_time(8) > 2 * transfer_time(2)

    def test_history_records_transitions(self):
        rsim = RSim(inverter_chain(1))
        rsim.run_vector({"a": 0})
        since = rsim.now
        rsim.drive("a", 1)
        rsim.settle()
        changes = [(t, v) for t, v in rsim.history("n0") if t > since]
        assert changes and changes[-1][1] == 0

    def test_rsim_never_exceeds_static_worst_case(self):
        # The central cross-engine invariant: a concrete vector's settle
        # time is bounded by the analyzer's worst-case arrival.
        net = ripple_adder(4)
        result = TimingAnalyzer(net).analyze()
        rsim = RSim(net)
        rsim.run_vector(
            {**{f"a{i}": 0 for i in range(4)},
             **{f"b{i}": 1 for i in range(4)}, "cin": 0}
        )
        since = rsim.now
        rsim.drive("a0", 1)  # launch the carry ripple
        rsim.settle()
        for i in range(4):
            node = f"sum{i}"
            settle = rsim.settle_time_of(node, since)
            if settle is None:
                continue
            tv = result.arrival_of(node)
            assert settle - since <= tv * 1.001, node

    def test_scheduling_in_the_past_rejected(self):
        rsim = RSim(inverter_chain(1))
        rsim.run_vector({"a": 1})
        with pytest.raises(SimulationError):
            rsim.drive("a", 0, at=rsim.now - 1e-9)

    def test_unknown_input_rejected(self):
        rsim = RSim(inverter_chain(1))
        with pytest.raises(SimulationError):
            rsim.drive("n0", 1)

    def test_settle_with_limit_pauses(self):
        rsim = RSim(inverter_chain(8))
        rsim.run_vector({"a": 0})
        rsim.drive("a", 1)
        rsim.settle(limit=rsim.now + 0.5e-9)
        # Not everything switched yet; the queue still holds events.
        assert rsim._queue
        rsim.settle()
        assert not rsim._queue
        assert rsim.value("n7") in (0, 1)


class TestOscillation:
    def test_ring_oscillator_detected(self):
        net = Netlist("ring")
        net.set_input("kick")
        add_inverter(net, "r2", "r0", tag="i0")
        add_inverter(net, "r0", "r1", tag="i1")
        add_inverter(net, "r1", "r2", tag="i2")
        net.add_enh("kick", "r2", "gnd", name="force")
        rsim = RSim(net)
        rsim.run_vector({"kick": 1})
        rsim.drive("kick", 0)
        with pytest.raises(SimulationError):
            rsim.settle()
