"""Serving-layer tests: RWLock, ResultCache, DesignSession, TimingServer.

The contract under test, from the serving-layer invariants:

* every HTTP response is JSON; every ``report`` payload validates
  against the versioned report schema;
* the content-addressed cache makes repeat queries hits and edits
  misses -- and an edit toggled *back* is a hit again;
* deltas are atomic (epoch identifies the state the report describes)
  and incremental (only invalidated stages re-extract);
* overload is refused (429 + Retry-After), drain is refused (503), a
  deadline overrun under ``strict`` is 504 and under a degraded policy
  is a schema-valid partial report that is *not* cached;
* concurrent clients -- readers and writers mixed -- never corrupt a
  session or crash the daemon.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import __version__
from repro.circuits import inverter_chain, random_logic
from repro.core import REPORT_SCHEMA_VERSION, validate_report
from repro.netlist import sim_dumps, sim_loads
from repro.serve import (
    DesignSession,
    HttpError,
    ResultCache,
    RWLock,
    TimingServer,
    cache_key,
)


def request(port, method, path, body=None, raw=None):
    """One HTTP exchange; returns (status, payload, headers)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        data = raw if raw is not None else (
            None if body is None else json.dumps(body)
        )
        conn.request(method, path, body=data)
        response = conn.getresponse()
        payload = json.loads(response.read())
        return response.status, payload, dict(response.getheaders())
    finally:
        conn.close()


@pytest.fixture
def server():
    server = TimingServer(port=0, max_inflight=4)
    server.start()
    yield server
    server._draining.clear()  # tests may have toggled it
    server.stop()


@pytest.fixture
def chain_sim():
    return sim_dumps(inverter_chain(8))


@pytest.fixture
def logic_sim():
    return sim_dumps(random_logic(120, seed=3))


# ----------------------------------------------------------------------
# RWLock.
# ----------------------------------------------------------------------
class TestRWLock:
    def test_readers_are_concurrent(self):
        lock = RWLock()
        entered = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read_locked():
                entered.wait()  # both readers inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_and_is_preferred(self):
        lock = RWLock()
        order = []
        reader_holds = threading.Event()
        release_reader = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_holds.set()
                release_reader.wait(5)
            order.append("reader1-out")

        def writer():
            with lock.write_locked():
                order.append("writer")

        def late_reader():
            with lock.read_locked():
                order.append("reader2")

        t1 = threading.Thread(target=first_reader)
        t1.start()
        assert reader_holds.wait(5)
        tw = threading.Thread(target=writer)
        tw.start()
        # Wait until the writer is registered as waiting, then start a
        # reader: writer preference must sequence it *after* the writer.
        for _ in range(500):
            if lock.stats()["writers_waiting"] == 1:
                break
            time.sleep(0.01)
        assert lock.stats()["writers_waiting"] == 1
        t2 = threading.Thread(target=late_reader)
        t2.start()
        time.sleep(0.05)
        assert "writer" not in order and "reader2" not in order
        release_reader.set()
        for t in (t1, tw, t2):
            t.join(timeout=5)
        assert order.index("writer") < order.index("reader2")

    def test_stats_shape(self):
        lock = RWLock()
        with lock.read_locked():
            stats = lock.stats()
        assert stats == {"readers": 1, "writer": False, "writers_waiting": 0}


# ----------------------------------------------------------------------
# ResultCache.
# ----------------------------------------------------------------------
class TestResultCache:
    def test_memory_hit_and_counters(self):
        cache = ResultCache()
        key = cache_key("sim", {"vdd": 5.0}, {"top_k": 5})
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_disk_layer_survives_restart(self, tmp_path):
        key = cache_key("sim", {}, {})
        ResultCache(tmp_path).put(key, {"x": 2})
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == {"x": 2}
        assert fresh.stats()["disk_hits"] == 1

    def test_corrupt_disk_entry_is_evicted(self, tmp_path):
        key = cache_key("sim", {}, {})
        ResultCache(tmp_path).put(key, {"x": 3})
        [entry] = list(tmp_path.iterdir())
        entry.write_text("{ not json")
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert not entry.exists()
        assert fresh.stats()["corrupt_evictions"] == 1

    def test_memory_lru_bound(self):
        cache = ResultCache(memory_limit=2)
        keys = [cache_key("sim", {}, {"i": i}) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, {"i": i})
        assert cache.get(keys[0]) is None  # evicted, no disk layer
        assert cache.get(keys[2]) == {"i": 2}

    def test_key_is_content_addressed(self):
        a = cache_key("sim a", {"vdd": 5.0}, {"top_k": 5})
        assert a == cache_key("sim a", {"vdd": 5.0}, {"top_k": 5})
        assert a != cache_key("sim b", {"vdd": 5.0}, {"top_k": 5})
        assert a != cache_key("sim a", {"vdd": 4.5}, {"top_k": 5})
        assert a != cache_key("sim a", {"vdd": 5.0}, {"top_k": 6})

    def test_key_mixes_in_schema_version(self, monkeypatch):
        # Bumping the report schema must retire every old cache key.
        from repro.serve import cache as cache_module

        a = cache_key("sim", {"vdd": 5.0}, {"top_k": 5})
        monkeypatch.setattr(
            cache_module, "REPORT_SCHEMA_VERSION", "999.0.0"
        )
        assert cache_key("sim", {"vdd": 5.0}, {"top_k": 5}) != a

    def test_stale_schema_disk_entry_is_evicted(self, tmp_path):
        # A disk entry stamped with a different schema version (a
        # hand-copied or legacy file landing under a current key) is
        # evicted on read, never served.
        key = cache_key("sim", {}, {})
        ResultCache(tmp_path).put(
            key, {"schema_version": "0.0.1", "x": 4}
        )
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) is None
        assert not list(tmp_path.iterdir())
        assert fresh.stats()["stale_evictions"] == 1

    def test_current_schema_disk_entry_is_served(self, tmp_path):
        key = cache_key("sim", {}, {})
        payload = {"schema_version": REPORT_SCHEMA_VERSION, "x": 5}
        ResultCache(tmp_path).put(key, payload)
        fresh = ResultCache(tmp_path)
        assert fresh.get(key) == payload
        assert fresh.stats()["stale_evictions"] == 0


# ----------------------------------------------------------------------
# DesignSession.
# ----------------------------------------------------------------------
class TestDesignSession:
    def test_analyze_caches_and_validates(self, chain_sim):
        session = DesignSession("chain", chain_sim)
        payload, cached, epoch = session.analyze()
        assert cached is False and epoch == 0
        validate_report(payload)
        payload2, cached2, _ = session.analyze()
        assert cached2 is True and payload2 == payload

    def test_delta_misses_and_toggle_back_hits(self, chain_sim):
        session = DesignSession("chain", chain_sim)
        session.analyze()
        device = sorted(session.netlist.devices)[0]
        base_w = session.netlist.device(device).w
        payload, cached, epoch, _dedup = session.delta(
            [{"device": device, "w": base_w * 1.2}]
        )
        assert cached is False and epoch == 1
        validate_report(payload)
        # Toggling the edit back restores the original content hash:
        # the very first report comes straight out of the cache.
        _, cached_back, epoch_back, _dedup = session.delta(
            [{"device": device, "w": base_w}]
        )
        assert cached_back is True and epoch_back == 2

    def test_explain_reuses_memoized_analysis(self, chain_sim):
        session = DesignSession("chain", chain_sim)
        session.analyze()
        explanation, _ = session.explain()
        assert session.analyses == 1  # explain reused the live result
        assert explanation["events"] if "events" in explanation else explanation

    def test_policy_override_is_scoped_to_the_request(self, chain_sim):
        session = DesignSession("chain", chain_sim, on_error="strict")
        session.analyze(on_error="quarantine", use_cache=False)
        assert session.analyzer.on_error == "strict"
        assert session.analyzer.calculator.on_error == "strict"


# ----------------------------------------------------------------------
# TimingServer over real HTTP.
# ----------------------------------------------------------------------
class TestServerEndpoints:
    def test_healthz_reports_identity(self, server):
        status, payload, _ = request(server.port, "GET", "/healthz")
        assert status == 200 and payload["ok"] is True
        assert payload["status"] == "ok"
        assert payload["server"] == {
            "tool": "repro",
            "version": __version__,
            "schema_version": REPORT_SCHEMA_VERSION,
        }

    def test_full_design_lifecycle(self, server, chain_sim):
        port = server.port
        status, loaded, _ = request(
            port, "POST", "/designs/chain", {"sim": chain_sim}
        )
        assert status == 200 and loaded["devices"] > 0

        status, cold, _ = request(port, "POST", "/designs/chain/analyze", {})
        assert status == 200 and cold["cached"] is False
        validate_report(cold["report"])

        status, warm, _ = request(port, "POST", "/designs/chain/analyze", {})
        assert status == 200 and warm["cached"] is True
        assert warm["report"] == cold["report"]

        device = sorted(sim_loads(chain_sim).devices)[0]
        status, delta, _ = request(
            port,
            "POST",
            "/designs/chain/delta",
            {"edits": [{"device": device, "w": 2e-5}]},
        )
        assert status == 200 and delta["epoch"] == 1
        validate_report(delta["report"])

        status, explained, _ = request(
            port, "POST", "/designs/chain/explain", {}
        )
        assert status == 200 and "explanation" in explained

        status, charge, _ = request(port, "POST", "/designs/chain/charge", {})
        assert status == 200
        assert charge["charge"]["schema"] == "repro-charge-report"

        status, designs, _ = request(port, "GET", "/designs")
        assert designs["designs"] == ["chain"]

        status, stats, _ = request(port, "GET", "/stats")
        assert stats["requests"] >= 7
        assert stats["cache"]["hits"] >= 1
        assert stats["designs"]["chain"]["epoch"] == 1

        status, _, _ = request(port, "DELETE", "/designs/chain")
        assert status == 200
        status, _, _ = request(port, "POST", "/designs/chain/analyze", {})
        assert status == 404

    def test_error_mapping(self, server, chain_sim):
        port = server.port
        cases = [
            ("POST", "/designs/ghost/analyze", {}, 404),
            ("POST", "/designs/bad", {}, 400),  # no 'sim'
            ("POST", "/designs/bad", {"sim": "", "x": 1}, 400),
            ("GET", "/nowhere", None, 404),
        ]
        for method, path, body, expected in cases:
            status, payload, _ = request(port, method, path, body)
            assert status == expected, path
            assert payload["ok"] is False
        # Malformed JSON body.
        status, payload, _ = request(
            port, "POST", "/designs/x", raw="{not json"
        )
        assert status == 400
        # Unknown device in a delta is a netlist error: 422.
        request(port, "POST", "/designs/chain", {"sim": chain_sim})
        status, payload, _ = request(
            port,
            "POST",
            "/designs/chain/delta",
            {"edits": [{"device": "nope", "w": 1e-5}]},
        )
        assert status == 422
        # Bad policy name at load time.
        status, _, _ = request(
            port, "POST", "/designs/y", {"sim": chain_sim, "on_error": "yolo"}
        )
        assert status == 400

    def test_backpressure_is_429_with_retry_after(self, server, chain_sim):
        port = server.port
        request(port, "POST", "/designs/chain", {"sim": chain_sim})
        for _ in range(server.max_inflight):
            server._admit()
        try:
            status, payload, headers = request(
                port, "POST", "/designs/chain/analyze", {}
            )
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert "capacity" in payload["error"]["message"]
        finally:
            for _ in range(server.max_inflight):
                server._release()
        status, _, _ = request(port, "POST", "/designs/chain/analyze", {})
        assert status == 200
        assert server.rejected_busy == 1

    def test_draining_refuses_with_503(self, server, chain_sim):
        port = server.port
        request(port, "POST", "/designs/chain", {"sim": chain_sim})
        server._draining.set()
        try:
            status, _, _ = request(port, "POST", "/designs/chain/analyze", {})
            assert status == 503
        finally:
            server._draining.clear()
        status, _, _ = request(port, "POST", "/designs/chain/analyze", {})
        assert status == 200

    def test_stop_is_idempotent_and_clean(self, chain_sim):
        server = TimingServer(port=0).start()
        request(server.port, "POST", "/designs/chain", {"sim": chain_sim})
        server.stop()
        server.stop()  # idempotent
        with pytest.raises(OSError):
            request(server.port, "GET", "/healthz")


class TestDeadlines:
    def test_strict_overrun_is_504(self, server, logic_sim):
        port = server.port
        request(port, "POST", "/designs/logic", {"sim": logic_sim})
        status, payload, _ = request(
            port,
            "POST",
            "/designs/logic/analyze",
            {"deadline_ms": 0.001, "cache": "bypass"},
        )
        assert status == 504
        assert "deadline" in payload["error"]["message"]

    def test_degraded_overrun_is_partial_but_valid(self, server, logic_sim):
        port = server.port
        request(port, "POST", "/designs/logic", {"sim": logic_sim})
        status, payload, _ = request(
            port,
            "POST",
            "/designs/logic/analyze",
            {"deadline_ms": 0.001, "on_error": "quarantine"},
        )
        assert status == 200 and payload["cached"] is False
        report = payload["report"]
        validate_report(report)
        codes = [d["code"] for d in report["diagnostics"]["records"]]
        assert "deadline-exceeded" in codes
        assert report["diagnostics"]["coverage"]["complete"] is False
        # The cut report must not have been cached: a full-budget rerun
        # recovers complete coverage instead of replaying the partial.
        status, payload, _ = request(
            port,
            "POST",
            "/designs/logic/analyze",
            {"on_error": "quarantine"},
        )
        assert status == 200 and payload["cached"] is False
        coverage = payload["report"]["diagnostics"]["coverage"]
        assert coverage["complete"] is True


class TestConcurrentClients:
    def test_mixed_readers_and_writers(self, chain_sim):
        server = TimingServer(port=0, max_inflight=32).start()
        try:
            port = server.port
            request(port, "POST", "/designs/chain", {"sim": chain_sim})
            request(port, "POST", "/designs/chain/analyze", {})
            device = sorted(sim_loads(chain_sim).devices)[0]
            base_w = sim_loads(chain_sim).device(device).w
            failures = []

            def reader():
                for _ in range(10):
                    status, payload, _ = request(
                        port, "POST", "/designs/chain/analyze", {}
                    )
                    if status != 200:
                        failures.append(("analyze", status, payload))

            def writer(step):
                for i in range(5):
                    w = base_w * (1.0 + 0.01 * ((i + step) % 3))
                    status, payload, _ = request(
                        port,
                        "POST",
                        "/designs/chain/delta",
                        {"edits": [{"device": device, "w": w}]},
                    )
                    if status != 200:
                        failures.append(("delta", status, payload))

            threads = [threading.Thread(target=reader) for _ in range(6)]
            threads += [
                threading.Thread(target=writer, args=(s,)) for s in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert not failures
            assert not any(t.is_alive() for t in threads)
            status, stats, _ = request(port, "GET", "/stats")
            assert stats["designs"]["chain"]["epoch"] == 10
            assert stats["errors"] == 0
        finally:
            server.stop()
