"""TimingClient tests: retry policy, backoff, idempotent deltas.

The contract under test:

* transient failures -- connection errors and the daemon's own 429/503
  backpressure -- are retried with exponential backoff and full jitter,
  a ``Retry-After`` header setting the floor;
* definite failures (4xx other than 429, and any unexpected status)
  raise :class:`ClientError` immediately, carrying the decoded server
  error -- retries are never spent on them;
* :meth:`TimingClient.delta` draws one idempotency key per call and
  sends it verbatim on every retry, so the daemon applies the edit
  exactly once however many attempts the response takes.
"""

from __future__ import annotations

import http.server
import json
import random
import threading

import pytest

from repro.circuits import inverter_chain
from repro.netlist import sim_dumps
from repro.serve import ClientError, TimingClient, TimingServer


class ScriptedHandler(http.server.BaseHTTPRequestHandler):
    """Serve a scripted list of (status, headers, payload) replies."""

    script: list = []
    requests: list = []

    def _reply(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        type(self).requests.append(
            {
                "method": self.command,
                "path": self.path,
                "body": json.loads(raw) if raw else None,
            }
        )
        if type(self).script:
            status, headers, payload = type(self).script.pop(0)
        else:
            status, headers, payload = 200, {}, {"ok": True}
        body = json.dumps(payload).encode()
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = do_DELETE = _reply

    def log_message(self, *args):
        pass


@pytest.fixture
def scripted():
    """A live stub server; yields (port, script list, request log)."""
    ScriptedHandler.script = []
    ScriptedHandler.requests = []
    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), ScriptedHandler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd.server_address[1], ScriptedHandler.script, \
            ScriptedHandler.requests
    finally:
        httpd.shutdown()
        httpd.server_close()


def make_client(port, **kwargs):
    """A client with deterministic jitter and recorded (not real) sleeps."""
    sleeps = []
    client = TimingClient(
        port=port,
        rng=random.Random(7),
        sleep=sleeps.append,
        **kwargs,
    )
    return client, sleeps


class TestRetryPolicy:
    def test_success_needs_no_retry(self, scripted):
        port, script, requests = scripted
        script.append((200, {}, {"status": "ok"}))
        client, sleeps = make_client(port)
        assert client.healthz() == {"status": "ok"}
        assert client.attempts == 1 and client.retried == 0
        assert sleeps == []

    def test_503_retries_until_success(self, scripted):
        port, script, requests = scripted
        script.extend([
            (503, {}, {"error": {"message": "draining"}}),
            (503, {}, {"error": {"message": "draining"}}),
            (200, {}, {"status": "ok"}),
        ])
        client, sleeps = make_client(port, retries=5)
        assert client.healthz() == {"status": "ok"}
        assert client.attempts == 3 and client.retried == 2
        assert len(sleeps) == 2

    def test_retry_after_sets_the_floor(self, scripted):
        port, script, requests = scripted
        script.extend([
            (429, {"Retry-After": "1.5"}, {"error": {"message": "busy"}}),
            (200, {}, {"status": "ok"}),
        ])
        client, sleeps = make_client(port, retries=3, backoff=0.001)
        client.healthz()
        assert sleeps == [1.5]  # jittered backoff is microscopic; the
        #                         header's floor wins

    def test_backoff_is_exponential_and_jittered(self, scripted):
        port, script, requests = scripted
        script.extend([(503, {}, {})] * 4 + [(200, {}, {"status": "ok"})])
        client, sleeps = make_client(port, retries=5, backoff=0.1,
                                     backoff_cap=100.0)
        client.healthz()
        rng = random.Random(7)
        expected = [0.1 * 2**n * (0.5 + rng.random()) for n in range(4)]
        assert sleeps == pytest.approx(expected)

    def test_backoff_is_capped(self, scripted):
        port, script, requests = scripted
        script.extend([(503, {}, {})] * 6 + [(200, {}, {"status": "ok"})])
        client, sleeps = make_client(port, retries=8, backoff=0.1,
                                     backoff_cap=0.4)
        client.healthz()
        assert max(sleeps) <= 0.4 * 1.5 + 1e-12

    def test_retries_exhausted_raises_with_last_status(self, scripted):
        port, script, requests = scripted
        script.extend([(503, {}, {"error": {"message": "draining"}})] * 3)
        client, _ = make_client(port, retries=2)
        with pytest.raises(ClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert excinfo.value.attempts == 3

    def test_definite_failure_is_not_retried(self, scripted):
        port, script, requests = scripted
        script.append(
            (404, {}, {"error": {"code": "not-found",
                                 "message": "no such design"}})
        )
        client, sleeps = make_client(port, retries=5)
        with pytest.raises(ClientError) as excinfo:
            client.analyze("ghost")
        assert excinfo.value.status == 404
        assert excinfo.value.attempts == 1
        assert "no such design" in str(excinfo.value)
        assert sleeps == []

    def test_connection_refused_retries_then_raises(self):
        # Bind-then-close guarantees a dead port.
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client, sleeps = make_client(port, retries=2)
        with pytest.raises(ClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status is None
        assert excinfo.value.attempts == 3
        assert len(sleeps) == 2

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TimingClient(retries=-1)
        with pytest.raises(ValueError):
            TimingClient(backoff=-0.1)


class TestIdempotentDelta:
    def test_request_id_is_stable_across_retries(self, scripted):
        port, script, requests = scripted
        script.extend([
            (503, {}, {"error": {"message": "draining"}}),
            (503, {}, {"error": {"message": "draining"}}),
            (200, {}, {"epoch": 1}),
        ])
        client, _ = make_client(port, retries=5)
        client.delta("chip", [{"device": "m1", "w": 4e-6}])
        ids = [r["body"]["request_id"] for r in requests]
        assert len(ids) == 3 and len(set(ids)) == 1
        assert ids[0]  # non-empty

    def test_each_call_draws_a_fresh_id(self, scripted):
        port, script, requests = scripted
        client, _ = make_client(port)
        client.delta("chip", [{"device": "m1", "w": 4e-6}])
        client.delta("chip", [{"device": "m1", "w": 4e-6}])
        ids = [r["body"]["request_id"] for r in requests]
        assert len(set(ids)) == 2

    def test_explicit_request_id_is_passed_through(self, scripted):
        port, script, requests = scripted
        client, _ = make_client(port)
        client.delta("chip", [], request_id="caller-chose-this")
        assert requests[0]["body"]["request_id"] == "caller-chose-this"


class TestAgainstRealDaemon:
    @pytest.fixture
    def server(self):
        server = TimingServer(port=0, max_inflight=4).start()
        yield server
        server.stop()

    def test_lifecycle_and_exactly_once_delta(self, server):
        client, _ = make_client(server.port, retries=3)
        sim = sim_dumps(inverter_chain(6))
        info = client.load("chip", sim)
        assert info["devices"] == 12
        assert client.designs() == ["chip"]
        device = sorted(server.sessions["chip"].netlist.devices)[0]

        first = client.delta("chip", [{"device": device, "w": 4e-6}],
                             request_id="retry-me")
        # The "retry" of a delta whose response was lost: same key.
        second = client.delta("chip", [{"device": device, "w": 4e-6}],
                              request_id="retry-me")
        assert first["epoch"] == second["epoch"] == 1
        assert first["deduplicated"] is False
        assert second["deduplicated"] is True
        assert second["report"] == first["report"]
        assert server.sessions["chip"].epoch == 1  # applied exactly once

        report = client.analyze("chip")["report"]
        assert report["netlist"]["devices"] == 12
        explain = client.explain("chip")
        assert explain["explanation"]["records"]
        client.unload("chip")
        assert client.designs() == []

    def test_bad_request_id_is_rejected(self, server):
        client, _ = make_client(server.port)
        client.load("chip", sim_dumps(inverter_chain(4)))
        with pytest.raises(ClientError) as excinfo:
            client.request(
                "POST", "/designs/chip/delta",
                {"edits": [], "request_id": ""},
            )
        assert excinfo.value.status == 400
        with pytest.raises(ClientError) as excinfo:
            client.request(
                "POST", "/designs/chip/delta",
                {"edits": [], "request_id": "x" * 201},
            )
        assert excinfo.value.status == 400
