"""Fault injection against the running daemon (repro.serve).

The robustness contract, end to end over real HTTP:

* injected stage crashes degrade by policy -- a quarantine-loaded
  design answers 200 with a schema-valid partial report (diagnostics
  and coverage tell the truth), a strict-loaded design answers 422 --
  and the daemon survives either way;
* injected *pool* faults (worker crash, hard kill, hang, corrupt
  return) are invisible to clients: the supervised pool only pre-fills
  a cache and the serial walk is authoritative, so the report is
  byte-identical to a serial run and no worker process is orphaned;
* a client that hangs up mid-exchange is counted and survived;
* SIGTERM to a daemon subprocess drains, reaps its forked workers, and
  exits 0 -- zero orphan processes.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import time

import pytest

from repro import TimingAnalyzer, robust
from repro.circuits import inverter_chain, random_logic
from repro.core import validate_report
from repro.delay import shutdown_pool, stage_delay
from repro.netlist import sim_dumps, sim_loads
from repro.serve import TimingServer
from repro.testing import FaultPlan


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        data = None if body is None else json.dumps(body)
        conn.request(method, path, body=data)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


@pytest.fixture(autouse=True)
def _no_leftover_handler():
    robust.clear_fault_handler()
    yield
    robust.clear_fault_handler()


@pytest.fixture
def server():
    server = TimingServer(port=0).start()
    yield server
    server.stop()


@pytest.fixture
def chain_sim():
    return sim_dumps(inverter_chain(8))


def _workers_reaped(timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


# ----------------------------------------------------------------------
# Serial-path faults, by policy.
# ----------------------------------------------------------------------
class TestStageFaultsOverHttp:
    def test_quarantine_design_degrades_to_partial_report(
        self, server, chain_sim
    ):
        port = server.port
        request(port, "POST", "/designs/q",
                {"sim": chain_sim, "on_error": "quarantine"})
        plan = FaultPlan().crash("stage-arcs", times=1)
        with plan.installed():
            status, payload = request(
                port, "POST", "/designs/q/analyze", {"cache": "bypass"}
            )
        assert status == 200
        report = payload["report"]
        validate_report(report)
        records = report["diagnostics"]["records"]
        assert any(r["action"] == "quarantined" for r in records)
        assert report["diagnostics"]["coverage"]["complete"] is False
        # The daemon is unharmed: liveness and further queries both work.
        status, health = request(port, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, _ = request(
            port, "POST", "/designs/q/analyze", {"cache": "bypass"}
        )
        assert status == 200

    def test_strict_design_maps_fault_to_422(self, server, chain_sim):
        port = server.port
        request(port, "POST", "/designs/s", {"sim": chain_sim})
        plan = FaultPlan().crash("stage-arcs", times=1)
        with plan.installed():
            status, payload = request(
                port, "POST", "/designs/s/analyze", {"cache": "bypass"}
            )
            assert status == 422
            assert payload["ok"] is False
        # Fault budget spent: the design recovers, the daemon never died.
        status, payload = request(
            port, "POST", "/designs/s/analyze", {"cache": "bypass"}
        )
        assert status == 200
        validate_report(payload["report"])


# ----------------------------------------------------------------------
# Pool faults: the client must not be able to tell.
# ----------------------------------------------------------------------
class TestPoolFaultsOverHttp:
    """Worker crash / kill / hang / corrupt-return behind the daemon."""

    @pytest.fixture(autouse=True)
    def _force_pool(self, monkeypatch):
        # Let a tiny circuit on any host cross the parallel-extraction
        # gate so the fork pool actually engages, then reap it after.
        monkeypatch.setattr(stage_delay, "available_cpus", lambda: 4)
        monkeypatch.setattr(stage_delay, "PARALLEL_MIN_DEVICES", 1)
        monkeypatch.setattr(stage_delay, "PARALLEL_COLD_MIN_DEVICES", 1)
        yield
        shutdown_pool()
        assert _workers_reaped()

    @pytest.mark.parametrize(
        "mode",
        ["crash", "hard_crash", "delay", "corrupt"],
    )
    def test_worker_fault_is_invisible_over_http(self, mode, chain_sim):
        # Serial ground truth, same engine options the session uses.
        baseline = TimingAnalyzer(
            sim_loads(chain_sim, name="pooled"), workers=1
        ).analyze(top_k=5).to_json()

        if mode == "crash":
            plan = FaultPlan().crash("worker-task", times=None,
                                     exc_type=ValueError)
        elif mode == "hard_crash":
            plan = FaultPlan().hard_crash("worker-task", times=None)
        elif mode == "delay":
            plan = FaultPlan().delay("worker-task", 5.0, times=None)
        else:
            plan = FaultPlan().corrupt("worker-result", times=None)

        server = TimingServer(port=0, workers=2).start()
        try:
            with plan.installed():
                # Load *inside* the plan so the pool forks with the
                # faults scripted in worker memory.
                request(server.port, "POST", "/designs/pooled",
                        {"sim": chain_sim})
                session = server.sessions["pooled"]
                calc = session.analyzer.calculator
                calc.retry_backoff = 0.01
                if mode == "delay":
                    calc.task_timeout = 0.2
                    calc.task_retries = 0
                status, payload = request(
                    server.port, "POST", "/designs/pooled/analyze",
                    {"cache": "bypass"},
                )
            assert status == 200
            assert payload["report"] == baseline
            status, health = request(server.port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Client misbehaviour.
# ----------------------------------------------------------------------
class TestClientDisconnect:
    def test_hangup_mid_exchange_is_counted_and_survived(self, server):
        port = server.port
        sim = sim_dumps(random_logic(120, seed=3))
        request(port, "POST", "/designs/d", {"sim": sim})

        body = json.dumps({"cache": "bypass"}).encode()
        head = (
            f"POST /designs/d/analyze HTTP/1.1\r\n"
            f"Host: 127.0.0.1\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.sendall(head + body)
        # SO_LINGER(on, 0): close sends RST, so the daemon's read or
        # write on this connection fails like a real mid-flight hangup.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.client_disconnects >= 1:
                break
            time.sleep(0.05)
        assert server.client_disconnects >= 1
        # Everyone else is unaffected.
        status, payload = request(port, "POST", "/designs/d/analyze", {})
        assert status == 200
        validate_report(payload["report"])


# ----------------------------------------------------------------------
# SIGTERM to a real daemon process.
# ----------------------------------------------------------------------
class TestSigtermSubprocess:
    def _children_of(self, pid: int) -> list[int]:
        out = subprocess.run(
            ["ps", "-o", "pid=", "--ppid", str(pid)],
            capture_output=True, text=True,
        ).stdout
        return [int(tok) for tok in out.split()]

    def test_sigterm_drains_reaps_and_exits_zero(self, tmp_path):
        # Big enough to cross the cold parallel gate: the daemon forks
        # real pool workers, which SIGTERM must reap.
        sim_path = tmp_path / "big.sim"
        sim_path.write_text(sim_dumps(random_logic(4500, seed=1)))
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(sim_path),
             "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
        )
        try:
            # Skip the per-design "loaded ..." lines to the listen line.
            match = None
            for _ in range(10):
                line = proc.stdout.readline()
                match = re.search(r"http://[\w.]+:(\d+)", line)
                if match:
                    break
            assert match, f"no listen line: {line!r}"
            port = int(match.group(1))

            status, health = request(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, payload = request(port, "POST", "/designs/big/analyze", {})
            assert status == 200
            validate_report(payload["report"])

            workers = self._children_of(proc.pid)
            # On a multi-CPU host the analysis crossed the cold parallel
            # gate, so forked pool workers must exist (and must die with
            # the daemon).  A 1-CPU host stays serial; the shutdown path
            # is still exercised, there is just nothing to orphan.
            if stage_delay.available_cpus() >= 2:
                assert workers, "parallel extraction spawned no pool workers"

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

            deadline = time.monotonic() + 10
            leftover = workers
            while time.monotonic() < deadline:
                leftover = [
                    pid for pid in workers
                    if os.path.exists(f"/proc/{pid}")
                ]
                if not leftover:
                    break
                time.sleep(0.1)
            assert not leftover, f"orphaned pool workers: {leftover}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


# ----------------------------------------------------------------------
# SIGKILL chaos: crash a real daemon at each durability fault site,
# restart it on the same journal directory, and prove recovery.
# ----------------------------------------------------------------------
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestCrashRecoverySubprocess:
    """Power-cut chaos against the write-ahead journal.

    Each scenario arms a ``REPRO_FAULT_PLAN`` inside a real ``repro
    serve`` daemon so a SIGKILL fires at one exact durability fault
    site, then restarts a clean daemon on the same ``--journal-dir``
    and asserts the recovery contract: the design comes back, torn
    tails are quarantined as diagnostics (never a refused start), and
    the client's retried delta -- same idempotency key -- lands exactly
    once.
    """

    def _spawn(self, sim_path, journal_dir, *, plan=None, compact=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        env.pop("REPRO_FAULT_PLAN", None)
        env.pop("REPRO_JOURNAL_COMPACT_BYTES", None)
        if plan is not None:
            env["REPRO_FAULT_PLAN"] = json.dumps(plan)
        if compact is not None:
            env["REPRO_JOURNAL_COMPACT_BYTES"] = str(compact)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(sim_path),
             "--port", "0", "--journal-dir", str(journal_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=_REPO_ROOT,
        )
        match = None
        for _ in range(10):
            line = proc.stdout.readline()
            match = re.search(r"http://[\w.]+:(\d+)", line)
            if match:
                break
        assert match, f"no listen line: {line!r}"
        return proc, int(match.group(1))

    def _kill_via(self, port, path, body):
        """Send the request that trips the armed SIGKILL; swallow the
        connection death (the daemon never answers it)."""
        try:
            request(port, "POST", path, body)
        except (OSError, http.client.HTTPException, ValueError):
            pass

    def _assert_killed(self, proc):
        assert proc.wait(timeout=30) == -signal.SIGKILL

    def _cleanup(self, proc):
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    @pytest.fixture
    def sim_path(self, tmp_path):
        path = tmp_path / "chip.sim"
        path.write_text(sim_dumps(inverter_chain(8)))
        return path

    @pytest.fixture
    def device(self, sim_path):
        return sorted(sim_loads(sim_path.read_text()).devices)[0]

    def _crash_then_recover(
        self, sim_path, journal_dir, device, *,
        plan, compact=None, edits_before_crash=0,
    ):
        """Common chaos shape: crash a daemon mid-delta, restart, and
        return (proc, port, delta_reply) of the retried request."""
        proc, port = self._spawn(
            sim_path, journal_dir, plan=plan, compact=compact
        )
        try:
            for i in range(edits_before_crash):
                status, _ = request(
                    port, "POST", "/designs/chip/delta",
                    {"edits": [{"device": device, "w": (2 + i) * 1e-6}],
                     "request_id": f"warm-{i}"},
                )
                assert status == 200
            self._kill_via(
                port, "/designs/chip/delta",
                {"edits": [{"device": device, "w": 9.25e-6}],
                 "request_id": "crashed-delta"},
            )
            self._assert_killed(proc)
        finally:
            self._cleanup(proc)

        revived, port = self._spawn(sim_path, journal_dir)
        # The at-least-once retry of the request the crash swallowed.
        status, reply = request(
            port, "POST", "/designs/chip/delta",
            {"edits": [{"device": device, "w": 9.25e-6}],
             "request_id": "crashed-delta"},
        )
        assert status == 200
        return revived, port, reply

    def test_kill_before_journal_append(self, tmp_path, sim_path, device):
        # Crash window 1: the edit was never journaled, so recovery
        # lacks it and the retry applies it exactly once.
        journal_dir = tmp_path / "journal"
        revived, port, reply = self._crash_then_recover(
            sim_path, journal_dir, device,
            # skip=1: the load record passes the site; the delta arms it.
            plan=[{"site": "journal-append", "mode": "kill9", "skip": 1}],
        )
        try:
            assert reply["epoch"] == 1 and reply["deduplicated"] is False
            # A second retry of the same key now deduplicates.
            status, again = request(
                port, "POST", "/designs/chip/delta",
                {"edits": [{"device": device, "w": 9.25e-6}],
                 "request_id": "crashed-delta"},
            )
            assert status == 200
            assert again["epoch"] == 1 and again["deduplicated"] is True
            assert again["report"] == reply["report"]
            _, stats = request(port, "GET", "/stats")
            assert stats["journal"]["recovered_designs"] == ["chip"]
        finally:
            self._cleanup(revived)

    def test_torn_write_then_kill_at_fsync(self, tmp_path, sim_path, device):
        # Crash window 2: half a record lands on disk.  Recovery must
        # quarantine the torn tail as a diagnostic and keep the valid
        # prefix; the retry then applies the edit exactly once.
        journal_dir = tmp_path / "journal"
        revived, port, reply = self._crash_then_recover(
            sim_path, journal_dir, device,
            plan=[
                {"site": "journal-append", "mode": "torn", "skip": 1,
                 "fraction": 0.5},
                {"site": "journal-fsync", "mode": "kill9", "skip": 1},
            ],
        )
        try:
            assert reply["epoch"] == 1 and reply["deduplicated"] is False
            _, stats = request(port, "GET", "/stats")
            codes = [d["code"]
                     for d in stats["journal"]["recovery_diagnostics"]]
            assert codes == ["journal-torn-tail"]
            assert stats["journal"]["recovered_designs"] == ["chip"]
            _, health = request(port, "GET", "/healthz")
            assert health["status"] == "ok"
            assert health["journal"]["recovery_diagnostics"] == 1
        finally:
            self._cleanup(revived)

    def test_kill_during_snapshot_write(self, tmp_path, sim_path, device):
        # Crash window 3: the delta was journaled (and acknowledged
        # durability-wise) but the compaction snapshot died mid-write.
        # atomic_write_json guarantees no torn snapshot; recovery
        # replays the journal and the retry deduplicates.
        journal_dir = tmp_path / "journal"
        revived, port, reply = self._crash_then_recover(
            sim_path, journal_dir, device,
            plan=[{"site": "snapshot-write", "mode": "kill9"}],
            compact=1,  # every delta triggers compaction
        )
        try:
            assert reply["epoch"] == 1 and reply["deduplicated"] is True
            _, stats = request(port, "GET", "/stats")
            assert stats["journal"]["recovered_designs"] == ["chip"]
            assert stats["journal"]["recovery_diagnostics"] == []
            assert stats["designs"]["chip"]["epoch"] == 1
        finally:
            self._cleanup(revived)

    def test_kill_before_journal_truncate(self, tmp_path, sim_path, device):
        # Crash window 4: snapshot written, journal not yet truncated.
        # Replay must skip the journal records the snapshot already
        # covers (epoch <= snapshot epoch), not double-apply them.
        journal_dir = tmp_path / "journal"
        revived, port, reply = self._crash_then_recover(
            sim_path, journal_dir, device,
            plan=[{"site": "journal-truncate", "mode": "kill9"}],
            compact=1,
        )
        try:
            assert reply["epoch"] == 1 and reply["deduplicated"] is True
            assert (journal_dir / "chip.snapshot.json").exists()
            _, stats = request(port, "GET", "/stats")
            assert stats["journal"]["recovery_diagnostics"] == []
            assert stats["designs"]["chip"]["epoch"] == 1
        finally:
            self._cleanup(revived)

    def test_recovered_state_matches_a_clean_daemon(
        self, tmp_path, sim_path, device
    ):
        # The parity oracle: a daemon that survived a mid-compaction
        # SIGKILL + journal replay answers byte-identically to a fresh
        # daemon that applied the same edits with no crash at all.
        journal_dir = tmp_path / "journal"
        revived, port, _ = self._crash_then_recover(
            sim_path, journal_dir, device,
            # skip=2: the two warm-up deltas' compactions pass the site;
            # the third delta's compaction trips the kill.
            plan=[{"site": "snapshot-write", "mode": "kill9", "skip": 2}],
            compact=1, edits_before_crash=2,
        )
        try:
            status, recovered = request(
                port, "POST", "/designs/chip/analyze", {}
            )
            assert status == 200
        finally:
            self._cleanup(revived)

        clean, port = self._spawn(sim_path, tmp_path / "clean-journal")
        try:
            for i in range(2):
                request(
                    port, "POST", "/designs/chip/delta",
                    {"edits": [{"device": device, "w": (2 + i) * 1e-6}]},
                )
            status, expected = request(
                port, "POST", "/designs/chip/delta",
                {"edits": [{"device": device, "w": 9.25e-6}]},
            )
            assert status == 200
        finally:
            self._cleanup(clean)
        assert json.dumps(recovered["report"], sort_keys=True) == \
            json.dumps(expected["report"], sort_keys=True)
