"""Fault injection against the running daemon (repro.serve).

The robustness contract, end to end over real HTTP:

* injected stage crashes degrade by policy -- a quarantine-loaded
  design answers 200 with a schema-valid partial report (diagnostics
  and coverage tell the truth), a strict-loaded design answers 422 --
  and the daemon survives either way;
* injected *pool* faults (worker crash, hard kill, hang, corrupt
  return) are invisible to clients: the supervised pool only pre-fills
  a cache and the serial walk is authoritative, so the report is
  byte-identical to a serial run and no worker process is orphaned;
* a client that hangs up mid-exchange is counted and survived;
* SIGTERM to a daemon subprocess drains, reaps its forked workers, and
  exits 0 -- zero orphan processes.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import time

import pytest

from repro import TimingAnalyzer, robust
from repro.circuits import inverter_chain, random_logic
from repro.core import validate_report
from repro.delay import shutdown_pool, stage_delay
from repro.netlist import sim_dumps, sim_loads
from repro.serve import TimingServer
from repro.testing import FaultPlan


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        data = None if body is None else json.dumps(body)
        conn.request(method, path, body=data)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


@pytest.fixture(autouse=True)
def _no_leftover_handler():
    robust.clear_fault_handler()
    yield
    robust.clear_fault_handler()


@pytest.fixture
def server():
    server = TimingServer(port=0).start()
    yield server
    server.stop()


@pytest.fixture
def chain_sim():
    return sim_dumps(inverter_chain(8))


def _workers_reaped(timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return True
        time.sleep(0.05)
    return False


# ----------------------------------------------------------------------
# Serial-path faults, by policy.
# ----------------------------------------------------------------------
class TestStageFaultsOverHttp:
    def test_quarantine_design_degrades_to_partial_report(
        self, server, chain_sim
    ):
        port = server.port
        request(port, "POST", "/designs/q",
                {"sim": chain_sim, "on_error": "quarantine"})
        plan = FaultPlan().crash("stage-arcs", times=1)
        with plan.installed():
            status, payload = request(
                port, "POST", "/designs/q/analyze", {"cache": "bypass"}
            )
        assert status == 200
        report = payload["report"]
        validate_report(report)
        records = report["diagnostics"]["records"]
        assert any(r["action"] == "quarantined" for r in records)
        assert report["diagnostics"]["coverage"]["complete"] is False
        # The daemon is unharmed: liveness and further queries both work.
        status, health = request(port, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, _ = request(
            port, "POST", "/designs/q/analyze", {"cache": "bypass"}
        )
        assert status == 200

    def test_strict_design_maps_fault_to_422(self, server, chain_sim):
        port = server.port
        request(port, "POST", "/designs/s", {"sim": chain_sim})
        plan = FaultPlan().crash("stage-arcs", times=1)
        with plan.installed():
            status, payload = request(
                port, "POST", "/designs/s/analyze", {"cache": "bypass"}
            )
            assert status == 422
            assert payload["ok"] is False
        # Fault budget spent: the design recovers, the daemon never died.
        status, payload = request(
            port, "POST", "/designs/s/analyze", {"cache": "bypass"}
        )
        assert status == 200
        validate_report(payload["report"])


# ----------------------------------------------------------------------
# Pool faults: the client must not be able to tell.
# ----------------------------------------------------------------------
class TestPoolFaultsOverHttp:
    """Worker crash / kill / hang / corrupt-return behind the daemon."""

    @pytest.fixture(autouse=True)
    def _force_pool(self, monkeypatch):
        # Let a tiny circuit on any host cross the parallel-extraction
        # gate so the fork pool actually engages, then reap it after.
        monkeypatch.setattr(stage_delay, "available_cpus", lambda: 4)
        monkeypatch.setattr(stage_delay, "PARALLEL_MIN_DEVICES", 1)
        monkeypatch.setattr(stage_delay, "PARALLEL_COLD_MIN_DEVICES", 1)
        yield
        shutdown_pool()
        assert _workers_reaped()

    @pytest.mark.parametrize(
        "mode",
        ["crash", "hard_crash", "delay", "corrupt"],
    )
    def test_worker_fault_is_invisible_over_http(self, mode, chain_sim):
        # Serial ground truth, same engine options the session uses.
        baseline = TimingAnalyzer(
            sim_loads(chain_sim, name="pooled"), workers=1
        ).analyze(top_k=5).to_json()

        if mode == "crash":
            plan = FaultPlan().crash("worker-task", times=None,
                                     exc_type=ValueError)
        elif mode == "hard_crash":
            plan = FaultPlan().hard_crash("worker-task", times=None)
        elif mode == "delay":
            plan = FaultPlan().delay("worker-task", 5.0, times=None)
        else:
            plan = FaultPlan().corrupt("worker-result", times=None)

        server = TimingServer(port=0, workers=2).start()
        try:
            with plan.installed():
                # Load *inside* the plan so the pool forks with the
                # faults scripted in worker memory.
                request(server.port, "POST", "/designs/pooled",
                        {"sim": chain_sim})
                session = server.sessions["pooled"]
                calc = session.analyzer.calculator
                calc.retry_backoff = 0.01
                if mode == "delay":
                    calc.task_timeout = 0.2
                    calc.task_retries = 0
                status, payload = request(
                    server.port, "POST", "/designs/pooled/analyze",
                    {"cache": "bypass"},
                )
            assert status == 200
            assert payload["report"] == baseline
            status, health = request(server.port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Client misbehaviour.
# ----------------------------------------------------------------------
class TestClientDisconnect:
    def test_hangup_mid_exchange_is_counted_and_survived(self, server):
        port = server.port
        sim = sim_dumps(random_logic(120, seed=3))
        request(port, "POST", "/designs/d", {"sim": sim})

        body = json.dumps({"cache": "bypass"}).encode()
        head = (
            f"POST /designs/d/analyze HTTP/1.1\r\n"
            f"Host: 127.0.0.1\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock.sendall(head + body)
        # SO_LINGER(on, 0): close sends RST, so the daemon's read or
        # write on this connection fails like a real mid-flight hangup.
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if server.client_disconnects >= 1:
                break
            time.sleep(0.05)
        assert server.client_disconnects >= 1
        # Everyone else is unaffected.
        status, payload = request(port, "POST", "/designs/d/analyze", {})
        assert status == 200
        validate_report(payload["report"])


# ----------------------------------------------------------------------
# SIGTERM to a real daemon process.
# ----------------------------------------------------------------------
class TestSigtermSubprocess:
    def _children_of(self, pid: int) -> list[int]:
        out = subprocess.run(
            ["ps", "-o", "pid=", "--ppid", str(pid)],
            capture_output=True, text=True,
        ).stdout
        return [int(tok) for tok in out.split()]

    def test_sigterm_drains_reaps_and_exits_zero(self, tmp_path):
        # Big enough to cross the cold parallel gate: the daemon forks
        # real pool workers, which SIGTERM must reap.
        sim_path = tmp_path / "big.sim"
        sim_path.write_text(sim_dumps(random_logic(4500, seed=1)))
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(sim_path),
             "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
        )
        try:
            # Skip the per-design "loaded ..." lines to the listen line.
            match = None
            for _ in range(10):
                line = proc.stdout.readline()
                match = re.search(r"http://[\w.]+:(\d+)", line)
                if match:
                    break
            assert match, f"no listen line: {line!r}"
            port = int(match.group(1))

            status, health = request(port, "GET", "/healthz")
            assert status == 200 and health["status"] == "ok"
            status, payload = request(port, "POST", "/designs/big/analyze", {})
            assert status == 200
            validate_report(payload["report"])

            workers = self._children_of(proc.pid)
            # On a multi-CPU host the analysis crossed the cold parallel
            # gate, so forked pool workers must exist (and must die with
            # the daemon).  A 1-CPU host stays serial; the shutdown path
            # is still exercised, there is just nothing to orphan.
            if stage_delay.available_cpus() >= 2:
                assert workers, "parallel extraction spawned no pool workers"

            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0

            deadline = time.monotonic() + 10
            leftover = workers
            while time.monotonic() < deadline:
                leftover = [
                    pid for pid in workers
                    if os.path.exists(f"/proc/{pid}")
                ]
                if not leftover:
                    break
                time.sleep(0.1)
            assert not leftover, f"orphaned pool workers: {leftover}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
