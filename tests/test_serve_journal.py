"""Durability-layer tests: journal framing, snapshots, crash recovery.

The contract under test, from the durability invariants:

* every acknowledged mutation is journaled (fsync'd) before the
  response leaves the daemon, so a restarted daemon rebuilds sessions
  whose ``analyze``/``explain`` payloads are byte-identical to the
  pre-crash ones;
* a torn tail or corrupt record ends replay at the longest valid
  prefix and is quarantined as a typed diagnostic -- recovery never
  refuses to start the daemon;
* compaction (snapshot + truncate) is invisible to recovery, and a
  crash between the snapshot write and the truncation is benign;
* unload durably forgets the design, whatever the crash point;
* the idempotency-key window survives recovery, so a retried delta
  after a crash applies exactly once.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import pytest

from repro.circuits import inverter_chain
from repro.netlist import sim_dumps
from repro.serve import DesignJournal, JournalStore, TimingServer
from repro.serve.journal import (
    RecoveredState,
    read_journal,
    recover_design,
)

_FRAME = struct.Struct("<II")


def frame(record: dict) -> bytes:
    payload = json.dumps(record, sort_keys=True).encode()
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@pytest.fixture
def chain_sim():
    return sim_dumps(inverter_chain(8))


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# Record framing and torn-tail decoding.
# ----------------------------------------------------------------------
class TestReadJournal:
    def test_round_trip(self, tmp_path):
        journal = DesignJournal(str(tmp_path), "chip")
        journal.append({"type": "load", "sim": "x"})
        journal.append({"type": "delta", "epoch": 1, "edits": []})
        journal.close()
        records, diags = read_journal(journal.path, "chip")
        assert [r["type"] for r in records] == ["load", "delta"]
        assert diags == []

    def test_missing_file_is_empty_not_error(self, tmp_path):
        records, diags = read_journal(str(tmp_path / "nope.journal"), "chip")
        assert records == [] and diags == []

    def test_torn_header_quarantined(self, tmp_path):
        path = tmp_path / "chip.journal"
        path.write_bytes(frame({"type": "load", "sim": "x"}) + b"\x07\x00")
        records, diags = read_journal(str(path), "chip")
        assert len(records) == 1
        assert [d.code for d in diags] == ["journal-torn-tail"]
        assert diags[0].action == "quarantined"

    def test_torn_payload_quarantined(self, tmp_path):
        path = tmp_path / "chip.journal"
        whole = frame({"type": "delta", "epoch": 1, "edits": []})
        path.write_bytes(frame({"type": "load", "sim": "x"}) + whole[:-3])
        records, diags = read_journal(str(path), "chip")
        assert [r["type"] for r in records] == ["load"]
        assert [d.code for d in diags] == ["journal-torn-tail"]

    def test_checksum_mismatch_quarantined(self, tmp_path):
        path = tmp_path / "chip.journal"
        bad = bytearray(frame({"type": "delta", "epoch": 1, "edits": []}))
        bad[-1] ^= 0xFF  # bit rot inside the payload
        path.write_bytes(frame({"type": "load", "sim": "x"}) + bytes(bad))
        records, diags = read_journal(str(path), "chip")
        assert [r["type"] for r in records] == ["load"]
        assert [d.code for d in diags] == ["journal-corrupt-record"]

    def test_implausible_length_quarantined(self, tmp_path):
        path = tmp_path / "chip.journal"
        path.write_bytes(_FRAME.pack(2**31, 0) + b"garbage")
        records, diags = read_journal(str(path), "chip")
        assert records == []
        assert [d.code for d in diags] == ["journal-corrupt-record"]

    def test_checksummed_garbage_is_not_a_record(self, tmp_path):
        payload = b"[1, 2, 3]"  # valid JSON, not a record object
        path = tmp_path / "chip.journal"
        path.write_bytes(_FRAME.pack(len(payload), zlib.crc32(payload))
                         + payload)
        records, diags = read_journal(str(path), "chip")
        assert records == []
        assert [d.code for d in diags] == ["journal-corrupt-record"]


# ----------------------------------------------------------------------
# recover_design replay semantics.
# ----------------------------------------------------------------------
class TestRecoverDesign:
    def test_load_then_deltas(self, tmp_path):
        journal = DesignJournal(str(tmp_path), "chip")
        journal.append({"type": "load", "sim": "SIM", "model": "elmore",
                        "on_error": "strict", "tech": None})
        journal.append({"type": "delta", "epoch": 1,
                        "edits": [{"device": "m1", "w": 4e-6}],
                        "request_id": "r1"})
        journal.append({"type": "delta", "epoch": 2,
                        "edits": [{"device": "m1", "l": 3e-6}]})
        journal.close()
        state, diags = recover_design(str(tmp_path), "chip")
        assert diags == []
        assert state.sim_text == "SIM" and state.epoch == 2
        assert state.dims == {"m1": {"w": 4e-6, "l": 3e-6}}
        assert state.requests == [("r1", 1)]

    def test_unload_recovers_to_not_loaded(self, tmp_path):
        journal = DesignJournal(str(tmp_path), "chip")
        journal.append({"type": "load", "sim": "SIM"})
        journal.append({"type": "unload"})
        journal.close()
        state, diags = recover_design(str(tmp_path), "chip")
        assert state is None and diags == []

    def test_snapshot_plus_stale_journal_records(self, tmp_path):
        # Crash window: snapshot written, journal not yet truncated.
        # Replay must skip records at or below the snapshot epoch.
        journal = DesignJournal(str(tmp_path), "chip")
        journal.append({"type": "delta", "epoch": 1,
                        "edits": [{"device": "m1", "w": 1.0}]})
        journal.append({"type": "delta", "epoch": 2,
                        "edits": [{"device": "m1", "w": 7.5}]})
        journal.close()
        snapshot = {
            "version": 1, "design": "chip", "epoch": 2, "sim": "SIM",
            "dims": {"m1": {"w": 7.5}}, "model": "elmore",
            "on_error": "strict", "tech": None, "requests": [],
        }
        with open(journal.snapshot_path, "w") as fp:
            json.dump(snapshot, fp)
        state, diags = recover_design(str(tmp_path), "chip")
        assert diags == []
        assert state.epoch == 2 and state.dims == {"m1": {"w": 7.5}}

    def test_corrupt_snapshot_falls_back_to_journal(self, tmp_path):
        journal = DesignJournal(str(tmp_path), "chip")
        journal.append({"type": "load", "sim": "SIM"})
        journal.close()
        with open(journal.snapshot_path, "w") as fp:
            fp.write("{not json")
        state, diags = recover_design(str(tmp_path), "chip")
        assert state is not None and state.sim_text == "SIM"
        assert [d.code for d in diags] == ["snapshot-corrupt"]

    def test_orphan_delta_quarantined(self, tmp_path):
        journal = DesignJournal(str(tmp_path), "chip")
        journal.append({"type": "delta", "epoch": 1, "edits": []})
        journal.close()
        state, diags = recover_design(str(tmp_path), "chip")
        assert state is None
        codes = [d.code for d in diags]
        assert "journal-orphan-record" in codes
        assert "journal-unrecoverable" in codes

    def test_request_window_is_bounded(self):
        state = RecoveredState(name="chip", sim_text="SIM", tech=None,
                               model="elmore", on_error="strict")
        for i in range(200):
            state.apply_delta({"epoch": i + 1, "edits": [],
                               "request_id": f"r{i}"})
        assert len(state.requests) == 64
        assert state.requests[-1] == ("r199", 200)


# ----------------------------------------------------------------------
# End-to-end recovery parity on a real server.
# ----------------------------------------------------------------------
class TestRecoveryParity:
    def test_restart_is_byte_identical(self, tmp_path, chain_sim):
        journal_dir = str(tmp_path / "journal")
        server = TimingServer(port=0, journal_dir=journal_dir)
        server.load("chip", {"sim": chain_sim})
        session = server.sessions["chip"]
        device = sorted(session.netlist.devices)[0]
        _, _, epoch, _ = session.delta(
            [{"device": device, "w": 4.321e-6}], request_id="req-1"
        )
        analyze_before = canonical(session.analyze()[0])
        explain_before = canonical(session.explain()[0])
        server.stop()  # drops everything in memory

        revived = TimingServer(port=0, journal_dir=journal_dir)
        assert revived.recovered_designs == ["chip"]
        assert revived.recovery_diagnostics == []
        session = revived.sessions["chip"]
        assert canonical(session.analyze()[0]) == analyze_before
        assert canonical(session.explain()[0]) == explain_before
        assert session.epoch == epoch
        revived.stop()

    def test_recovery_survives_compaction(self, tmp_path, chain_sim):
        journal_dir = str(tmp_path / "journal")
        server = TimingServer(port=0, journal_dir=journal_dir)
        server.journal_store.compact_bytes = 1  # compact on every delta
        server.load("chip", {"sim": chain_sim})
        session = server.sessions["chip"]
        device = sorted(session.netlist.devices)[0]
        session.delta([{"device": device, "w": 4e-6}])
        session.delta([{"device": device, "w": 5.5e-6}])
        assert session.journal.compactions >= 1
        assert os.path.exists(session.journal.snapshot_path)
        analyze_before = canonical(session.analyze()[0])
        server.stop()

        revived = TimingServer(port=0, journal_dir=journal_dir)
        assert revived.recovery_diagnostics == []
        session = revived.sessions["chip"]
        assert canonical(session.analyze()[0]) == analyze_before
        assert session.epoch == 2
        revived.stop()

    def test_dedupe_survives_restart(self, tmp_path, chain_sim):
        journal_dir = str(tmp_path / "journal")
        server = TimingServer(port=0, journal_dir=journal_dir)
        server.load("chip", {"sim": chain_sim})
        session = server.sessions["chip"]
        device = sorted(session.netlist.devices)[0]
        payload, _, epoch, dedup = session.delta(
            [{"device": device, "w": 4e-6}], request_id="req-1"
        )
        assert dedup is False
        server.stop()

        revived = TimingServer(port=0, journal_dir=journal_dir)
        session = revived.sessions["chip"]
        replayed, _, epoch2, dedup2 = session.delta(
            [{"device": device, "w": 4e-6}], request_id="req-1"
        )
        assert dedup2 is True and epoch2 == epoch
        assert canonical(replayed) == canonical(payload)
        assert session.epoch == epoch  # the edit did NOT re-apply
        revived.stop()

    def test_duplicate_delta_returns_original_epoch_and_payload(
        self, tmp_path, chain_sim
    ):
        server = TimingServer(port=0, journal_dir=str(tmp_path / "j"))
        server.load("chip", {"sim": chain_sim})
        session = server.sessions["chip"]
        device = sorted(session.netlist.devices)[0]
        first, _, epoch1, _ = session.delta(
            [{"device": device, "w": 4e-6}], request_id="a"
        )
        session.delta([{"device": device, "w": 6e-6}], request_id="b")
        # Replaying the FIRST request id must return its original
        # epoch/payload, not re-edit at the current epoch.
        replay, cached, epoch, dedup = session.delta(
            [{"device": device, "w": 4e-6}], request_id="a"
        )
        assert dedup is True and cached is True
        assert epoch == epoch1 and canonical(replay) == canonical(first)
        assert session.epoch == 2
        assert session.deduplicated == 1
        server.stop()

    def test_unload_removes_durable_state(self, tmp_path, chain_sim):
        journal_dir = str(tmp_path / "journal")
        server = TimingServer(port=0, journal_dir=journal_dir)
        server.load("chip", {"sim": chain_sim})
        server.unload("chip")
        assert os.listdir(journal_dir) == []
        server.stop()
        revived = TimingServer(port=0, journal_dir=journal_dir)
        assert revived.recovered_designs == []
        assert revived.recovery_diagnostics == []
        revived.stop()

    def test_reload_supersedes_old_journal(self, tmp_path, chain_sim):
        journal_dir = str(tmp_path / "journal")
        server = TimingServer(port=0, journal_dir=journal_dir)
        server.load("chip", {"sim": chain_sim})
        device = sorted(server.sessions["chip"].netlist.devices)[0]
        server.sessions["chip"].delta([{"device": device, "w": 9e-6}])
        server.load("chip", {"sim": chain_sim})  # explicit re-load
        server.stop()
        revived = TimingServer(port=0, journal_dir=journal_dir)
        session = revived.sessions["chip"]
        assert session.epoch == 0  # the re-load reset durable state too
        assert session.netlist.device(device).w != 9e-6
        revived.stop()

    def test_torn_tail_quarantined_and_surfaced(self, tmp_path, chain_sim):
        journal_dir = str(tmp_path / "journal")
        server = TimingServer(port=0, journal_dir=journal_dir)
        server.load("chip", {"sim": chain_sim})
        session = server.sessions["chip"]
        device = sorted(session.netlist.devices)[0]
        session.delta([{"device": device, "w": 4e-6}])
        analyze_good = canonical(session.analyze()[0])
        journal_path = session.journal.path
        server.stop()
        # Tear the last record: keep the first half of its bytes.
        blob = open(journal_path, "rb").read()
        second = frame({"device": device})  # just to size a plausible cut
        with open(journal_path, "wb") as fp:
            fp.write(blob[: len(blob) - max(4, len(second) // 2)])

        revived = TimingServer(port=0, journal_dir=journal_dir)
        assert revived.recovered_designs == ["chip"]
        codes = [d.code for d in revived.recovery_diagnostics]
        assert codes == ["journal-torn-tail"]
        # The valid prefix (the load) recovered; the torn delta did not.
        session = revived.sessions["chip"]
        assert session.epoch == 0
        assert canonical(session.analyze()[0]) != analyze_good
        # Diagnostics are surfaced over HTTP.
        revived.start()
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", revived.port,
                                          timeout=30)
        try:
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
            conn.request("GET", "/healthz")
            health = json.loads(conn.getresponse().read())
        finally:
            conn.close()
        assert health["journal"]["recovery_diagnostics"] == 1
        assert (stats["journal"]["recovery_diagnostics"][0]["code"]
                == "journal-torn-tail")
        revived.stop()

    def test_recovery_never_refuses_to_start(self, tmp_path):
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir()
        # A journal whose only load record carries an unparseable netlist:
        # session rebuild fails, the daemon still starts.
        journal = DesignJournal(str(journal_dir), "broken")
        journal.append({"type": "load", "sim": "e bad record"})
        journal.close()
        server = TimingServer(port=0, journal_dir=str(journal_dir))
        assert server.recovered_designs == []
        assert "broken" not in server.sessions
        codes = [d.code for d in server.recovery_diagnostics]
        assert codes == ["journal-recovery-failed"]
        server.stop()

    def test_design_names_round_trip_awkward_characters(self, tmp_path):
        store = JournalStore(str(tmp_path))
        name = "chip/rev 2%final"
        store.begin(name, {"sim": "SIM"})
        assert store.design_names() == [name]
        store.unload(name)
        assert store.design_names() == []
        store.close()

    def test_journal_write_failure_degrades_to_memory_only(
        self, tmp_path, chain_sim
    ):
        journal_dir = str(tmp_path / "journal")
        server = TimingServer(port=0, journal_dir=journal_dir)
        server.load("chip", {"sim": chain_sim})
        session = server.sessions["chip"]
        device = sorted(session.netlist.devices)[0]
        # Simulate the disk going away under the daemon.
        os.close(session.journal._fd) if session.journal._fd else None
        session.journal._fd = os.open(os.devnull, os.O_RDONLY)
        payload, _, epoch, _ = session.delta([{"device": device, "w": 4e-6}])
        assert epoch == 1  # the edit still applied, service continued
        assert session.journal is None and session.journal_error
        assert "journal_error" in session.stats()
        server.stop()
