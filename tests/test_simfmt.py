"""Tests for the .sim codec (repro.netlist.simfmt)."""

import pytest

from repro import DeviceKind, Netlist, SimFormatError
from repro.circuits import inverter_chain, mux2
from repro.netlist import sim_dumps, sim_loads


class TestRoundTrip:
    def _assert_equivalent(self, a: Netlist, b: Netlist) -> None:
        assert set(a.nodes) == set(b.nodes)
        assert set(a.devices) <= set(
            b.devices
        ) or len(a.devices) == len(b.devices)
        assert a.inputs == b.inputs
        assert a.outputs == b.outputs
        assert a.clocks == b.clocks
        for name, dev in a.devices.items():
            # Devices are renamed on load (auto names), so compare the
            # multiset of (kind, gate, source, drain, w, l).
            pass
        sig_a = sorted(
            (d.kind.value, d.gate, d.source, d.drain, round(d.w, 12), round(d.l, 12))
            for d in a.devices.values()
        )
        sig_b = sorted(
            (d.kind.value, d.gate, d.source, d.drain, round(d.w, 12), round(d.l, 12))
            for d in b.devices.values()
        )
        assert sig_a == sig_b

    def test_inverter_chain_roundtrip(self):
        original = inverter_chain(4)
        restored = sim_loads(sim_dumps(original))
        self._assert_equivalent(original, restored)

    def test_mux_roundtrip(self):
        original = mux2()
        restored = sim_loads(sim_dumps(original))
        self._assert_equivalent(original, restored)

    def test_clocked_roundtrip(self):
        net = Netlist("clk")
        net.set_clock("phi1", "phi1")
        net.set_clock("phi2", "phi2")
        net.set_input("d")
        net.add_enh("phi1", "d", "s")
        restored = sim_loads(sim_dumps(net))
        assert restored.clocks == {"phi1": "phi1", "phi2": "phi2"}

    def test_wire_cap_roundtrip(self):
        net = Netlist("cap")
        net.set_input("a")
        net.add_enh("a", "n", "gnd")
        net.add_cap("n", 12.5e-15)
        restored = sim_loads(sim_dumps(net))
        assert restored.node("n").cap == pytest.approx(12.5e-15)

    def test_netlist_name_preserved(self):
        net = Netlist("mydesign")
        net.add_enh("g", "a", "b")
        assert sim_loads(sim_dumps(net)).name == "mydesign"

    def test_rail_names_preserved(self):
        net = Netlist("t", vdd="VDD", gnd="VSS")
        net.add_enh("g", "a", "VSS")
        restored = sim_loads(sim_dumps(net))
        assert restored.vdd == "VDD" and restored.gnd == "VSS"


class TestParsing:
    def test_minimal_transistor_record(self):
        net = sim_loads("e g s d\n")
        assert len(net.devices) == 1
        dev = next(iter(net.devices.values()))
        assert dev.kind is DeviceKind.ENH
        assert dev.w == pytest.approx(net.tech.min_width())

    def test_geometry_in_centimicrons(self):
        net = sim_loads("e g s d 0 0 800 400\n")
        dev = next(iter(net.devices.values()))
        assert dev.w == pytest.approx(8e-6)
        assert dev.l == pytest.approx(4e-6)

    def test_depletion_record(self):
        net = sim_loads("d out out vdd\n")
        dev = next(iter(net.devices.values()))
        assert dev.kind is DeviceKind.DEP

    def test_capacitance_in_femtofarads(self):
        net = sim_loads("e g s d\nc s 42\n")
        assert net.node("s").cap == pytest.approx(42e-15)

    def test_coupling_cap_split(self):
        net = sim_loads("e g s d\nC s d 10\n")
        assert net.node("s").cap == pytest.approx(5e-15)
        assert net.node("d").cap == pytest.approx(5e-15)

    def test_aliases_canonicalized(self):
        net = sim_loads("= n1 n2\ne g n1 d\n")
        dev = next(iter(net.devices.values()))
        assert dev.source == "n2"

    def test_comments_and_blank_lines_skipped(self):
        net = sim_loads("| a comment\n\ne g s d\n| another\n")
        assert len(net.devices) == 1

    def test_resistance_records_ignored(self):
        net = sim_loads("e g s d\nR s 100\n")
        assert len(net.devices) == 1

    def test_io_extension_records(self):
        net = sim_loads("|I a\n|O y\n|K phi1 phi1\ne a y gnd\n")
        assert net.inputs == {"a"}
        assert net.outputs == {"y"}
        assert net.clocks == {"phi1": "phi1"}


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "z g s d\n",  # unknown record
            "e g s\n",  # too few fields
            "c n\n",  # missing value
            "c n notanumber\n",
            "C a b\n",
            "= onlyone\n",
            "|K phi1\n",  # missing phase
            "|I\n",
        ],
    )
    def test_malformed_records_raise(self, text):
        with pytest.raises(SimFormatError):
            sim_loads(text)

    def test_error_carries_line_number(self):
        with pytest.raises(SimFormatError) as exc_info:
            sim_loads("e g s d\nz x y\n")
        assert "line 2" in str(exc_info.value)

    def test_alias_cycle_detected(self):
        with pytest.raises(SimFormatError):
            sim_loads("= a b\n= b a\ne g a d\n")

    def test_negative_value_rejected(self):
        with pytest.raises(SimFormatError):
            sim_loads("c n -5\n")
