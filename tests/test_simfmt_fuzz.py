"""Property-based fuzz tests for the .sim codec (repro.netlist.simfmt).

Two invariants:

* **Total parser**: any input text -- random garbage, structured
  near-miss records, or seeded corruptions of a valid dump -- either
  parses or raises :class:`SimFormatError` whose ``line_number`` is
  ``None`` or a valid 1-based line index.  Never ``ValueError`` /
  ``IndexError`` / ``KeyError`` / ``AttributeError``.
* **Round trip**: dumping any constructible netlist and re-loading it
  preserves nodes, device signatures, and boundary declarations.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro import Netlist, SimFormatError
from repro.netlist import sim_dumps, sim_loads
from repro.testing import NetlistFuzzer

RECORD_TOKENS = st.sampled_from(
    [
        "e", "d", "c", "C", "=", "R", "|I", "|O", "|K",
        "|", "a", "b", "n1", "vdd", "gnd", "phi1",
        "0", "1", "-3", "4.5", "nan", "inf", "-inf", "1e", "0x1f",
        "3..14", "--2", "", " ",
    ]
)

structured_garbage = st.lists(
    st.lists(RECORD_TOKENS, min_size=0, max_size=9).map(" ".join),
    min_size=0,
    max_size=12,
).map("\n".join)

raw_garbage = st.text(max_size=400)


def _assert_parser_total(text: str) -> None:
    n_lines = text.count("\n") + 1
    try:
        sim_loads(text)
    except SimFormatError as exc:
        assert exc.line_number is None or 1 <= exc.line_number <= n_lines, (
            f"line_number {exc.line_number} out of range for "
            f"{n_lines}-line input"
        )


@settings(deadline=None)
@given(raw_garbage)
def test_raw_garbage_never_escapes_simformaterror(text):
    _assert_parser_total(text)


@settings(deadline=None)
@given(structured_garbage)
def test_structured_garbage_never_escapes_simformaterror(text):
    _assert_parser_total(text)


@settings(deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    mutations=st.integers(min_value=1, max_value=4),
)
def test_corrupted_valid_dump_never_escapes_simformaterror(seed, mutations):
    net = Netlist("fuzz-src")
    net.set_input("a")
    net.add_enh("a", "out", "gnd")
    net.add_pullup("out")
    net.add_cap("out", 20e-15)
    net.set_output("out")
    text = NetlistFuzzer(seed).corrupt_sim(sim_dumps(net), mutations=mutations)
    _assert_parser_total(text)


NODE_POOL = ["n1", "n2", "n3", "n4", "in1", "out1"]


@st.composite
def constructible_netlists(draw):
    """Generate netlists the .sim codec must round-trip exactly."""
    net = Netlist(draw(st.sampled_from(["fz", "fuzz", "m7"])))
    channel = NODE_POOL + [net.vdd, net.gnd]
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        gate = draw(st.sampled_from(channel))
        source, drain = draw(
            st.sampled_from(channel).flatmap(
                lambda s: st.tuples(
                    st.just(s),
                    st.sampled_from([n for n in channel if n != s]),
                )
            )
        )
        net.add_transistor(
            draw(st.sampled_from(["enh", "dep"])),
            gate,
            source,
            drain,
            w=draw(st.integers(min_value=1, max_value=40)) * 1e-8,
            l=draw(st.integers(min_value=1, max_value=40)) * 1e-8,
        )
    # A bare zero-cap node is not representable in .sim (only ``c``
    # records with cap > 0 carry otherwise-unconnected nodes), so
    # standalone nodes always get explicit capacitance.
    for node in draw(
        st.lists(st.sampled_from(NODE_POOL), max_size=3, unique=True)
    ):
        net.add_node(node, draw(st.integers(min_value=1, max_value=50)) * 1e-15)
    declarable = [n for n in net.nodes if not net.is_rail(n)]
    if declarable:
        for node in draw(
            st.lists(st.sampled_from(declarable), max_size=2, unique=True)
        ):
            net.set_input(node)
        for node in draw(
            st.lists(st.sampled_from(declarable), max_size=2, unique=True)
        ):
            net.set_output(node)
        clocked = draw(
            st.lists(st.sampled_from(declarable), max_size=1, unique=True)
        )
        for node in clocked:
            net.set_clock(node, draw(st.sampled_from(["phi1", "phi2"])))
    return net


def _device_signature(net):
    return sorted(
        (d.kind.value, d.gate, d.source, d.drain, round(d.w, 12), round(d.l, 12))
        for d in net.devices.values()
    )


@settings(deadline=None)
@given(constructible_netlists())
def test_round_trip_preserves_netlist(net):
    restored = sim_loads(sim_dumps(net))
    assert restored.name == net.name
    assert set(restored.nodes) == set(net.nodes)
    assert _device_signature(restored) == _device_signature(net)
    assert restored.inputs == net.inputs
    assert restored.outputs == net.outputs
    assert restored.clocks == net.clocks
    for name, node in net.nodes.items():
        if node.cap > 0:
            assert restored.node(name).cap == pytest.approx(node.cap)


@settings(deadline=None)
@given(constructible_netlists())
def test_round_trip_is_stable(net):
    """A second dump/load cycle reproduces the first dump byte-for-byte."""
    text = sim_dumps(net)
    assert sim_dumps(sim_loads(text)) == text
