"""Tests for the SPICE-lite transient simulator (repro.sim.spicelite)."""

import pytest

from repro import Netlist, NMOS4, SimulationError
from repro.circuits import add_inverter, inverter, inverter_chain, pass_chain
from repro.sim import (
    SpiceLite,
    TransientOptions,
    constant,
    measure_step_delay,
    step,
)

FAST = TransientOptions(dt=0.2e-9, settle=20e-9)


class TestDcLevels:
    def test_inverter_output_low_when_input_high(self):
        net = inverter()
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient({"a": constant(5.0)}, 5e-9)
        assert wave.final_value("out") < 1.0

    def test_inverter_output_high_when_input_low(self):
        net = inverter()
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient({"a": constant(0.0)}, 5e-9)
        assert wave.final_value("out") > 4.0

    def test_output_low_is_ratioed_not_zero(self):
        # A depletion-load inverter's low level is small but nonzero.
        net = inverter()
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient({"a": constant(5.0)}, 5e-9)
        v_low = wave.final_value("out")
        assert 0.0 < v_low < 1.0

    def test_pass_high_degrades_by_threshold(self):
        net = pass_chain(1)
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient(
            {"d": constant(5.0), "sel": constant(5.0)}, 40e-9
        )
        v = wave.final_value("p0")
        # Pass transistor high: roughly vdd - vt.
        assert 3.0 < v < 4.6


class TestTransient:
    def test_inverter_switches(self):
        net = inverter()
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient({"a": step(5e-9, 0.0, 5.0)}, 30e-9)
        assert wave.value_at("out", 2e-9) > 4.0
        assert wave.final_value("out") < 1.0

    def test_chain_alternates(self):
        net = inverter_chain(3)
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient({"a": constant(5.0)}, 30e-9)
        assert wave.final_value("n0") < 1.0
        assert wave.final_value("n1") > 4.0
        assert wave.final_value("n2") < 1.0

    def test_waveform_is_causal(self):
        net = inverter_chain(2)
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient({"a": step(5e-9, 0.0, 5.0)}, 40e-9)
        t0 = wave.crossing_after("n0", 2.5, "fall", 5e-9)
        t1 = wave.crossing_after("n1", 2.5, "rise", 5e-9)
        assert t0 is not None and t1 is not None and t1 > t0

    def test_record_subset(self):
        net = inverter_chain(2)
        sim = SpiceLite(net, options=FAST)
        wave = sim.transient({"a": constant(0.0)}, 2e-9, record=["n1"])
        assert wave.nodes == ["n1"]

    def test_unknown_stimulus_rejected(self):
        net = inverter()
        sim = SpiceLite(net, options=FAST)
        with pytest.raises(SimulationError):
            sim.transient({"nope": constant(0.0)}, 1e-9)

    def test_floating_gate_rejected(self):
        net = Netlist("bad")
        net.set_input("a")
        net.add_enh("ghost", "a", "gnd")
        with pytest.raises(SimulationError):
            SpiceLite(net)

    def test_node_count_excludes_boundary(self):
        net = inverter_chain(3)
        assert SpiceLite(net).node_count == 3


class TestMeasurement:
    def test_delay_positive_and_reasonable(self):
        net = inverter()
        m = measure_step_delay(net, "a", "out", direction="rise", options=FAST)
        assert m.output_direction == "fall"
        assert 0.05e-9 < m.delay < 20e-9

    def test_rise_slower_than_fall(self):
        # Ratioed nMOS: with a real load, the weak depletion pull-up is
        # clearly slower than the pull-down.
        net = inverter()
        net.add_cap("out", 50e-15)
        fall = measure_step_delay(net, "a", "out", direction="rise", options=FAST)
        rise = measure_step_delay(net, "a", "out", direction="fall", options=FAST)
        assert rise.delay > fall.delay

    def test_input_state_controls_side_inputs(self):
        from repro.circuits import nand

        net = nand(2)
        # With a1 low the output never falls on a0 rise.
        with pytest.raises(SimulationError):
            measure_step_delay(
                net, "a0", "out", direction="rise",
                input_state={"a1": 0}, options=FAST,
            )
        m = measure_step_delay(
            net, "a0", "out", direction="rise",
            input_state={"a1": 1}, options=FAST,
        )
        assert m.output_direction == "fall"

    def test_longer_chain_longer_delay(self):
        short = measure_step_delay(
            inverter_chain(2), "a", "n1", direction="rise", options=FAST
        )
        long = measure_step_delay(
            inverter_chain(4), "a", "n3", direction="rise", options=FAST
        )
        assert long.delay > short.delay
