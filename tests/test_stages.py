"""Tests for stage decomposition (repro.stages.decompose / stage)."""

import pytest

from repro import Netlist
from repro.circuits import (
    full_adder,
    inverter_chain,
    mips_like_datapath,
    mux2,
    pass_chain,
)
from repro.errors import StageError
from repro.stages import Stage, StageGraph, decompose


class TestInverterChain:
    def test_one_stage_per_inverter(self):
        graph = decompose(inverter_chain(5))
        assert len(graph) == 5

    def test_each_stage_has_two_devices(self):
        graph = decompose(inverter_chain(3))
        for stage in graph:
            assert len(stage.device_names) == 2

    def test_stage_outputs_chain(self):
        net = inverter_chain(3)
        graph = decompose(net)
        outputs = {o for stage in graph for o in stage.outputs}
        assert outputs == {"n0", "n1", "n2"}

    def test_successors_follow_the_chain(self):
        net = inverter_chain(3)
        graph = decompose(net)
        first = graph.stage_of("n0")
        succs = graph.successors(first)
        assert len(succs) == 1
        assert "n1" in succs[0].nodes


class TestPassNetworks:
    def test_pass_chain_is_one_stage_plus_sense(self):
        net = pass_chain(6)
        graph = decompose(net)
        chain_stage = graph.stage_of("p0")
        assert chain_stage is graph.stage_of("p5")
        assert len(chain_stage.nodes) == 6

    def test_boundary_includes_driving_input(self):
        net = pass_chain(3)
        graph = decompose(net)
        stage = graph.stage_of("p0")
        assert "d" in stage.boundary

    def test_gate_inputs_include_select(self):
        net = pass_chain(3)
        graph = decompose(net)
        stage = graph.stage_of("p0")
        assert "sel" in stage.gate_inputs


class TestPartitionInvariants:
    @pytest.mark.parametrize(
        "net",
        [inverter_chain(4), mux2(), full_adder(), pass_chain(5)],
        ids=["inv", "mux", "fa", "pass"],
    )
    def test_nodes_partitioned(self, net):
        graph = decompose(net)
        seen: set[str] = set()
        for stage in graph:
            assert not (stage.nodes & seen), "stages must not share nodes"
            seen |= stage.nodes
        # Every channel-connected internal node is in exactly one stage.
        for name in net.nodes:
            if net.is_boundary(name) or not net.channel_devices(name):
                continue
            assert name in seen

    @pytest.mark.parametrize(
        "net",
        [inverter_chain(4), mux2(), full_adder(), pass_chain(5)],
        ids=["inv", "mux", "fa", "pass"],
    )
    def test_every_device_in_exactly_one_stage(self, net):
        graph = decompose(net)
        all_devices = [d for s in graph for d in s.device_names]
        assert sorted(all_devices) == sorted(net.devices)

    def test_boundary_nodes_never_stage_members(self):
        net = mux2()
        graph = decompose(net)
        for stage in graph:
            for node in stage.nodes:
                assert not net.is_boundary(node)

    def test_decomposition_is_deterministic(self):
        net1, _ = mips_like_datapath(4, 2)
        net2, _ = mips_like_datapath(4, 2)
        g1 = [s.nodes for s in decompose(net1)]
        g2 = [s.nodes for s in decompose(net2)]
        assert g1 == g2


class TestDegenerate:
    def test_input_to_input_pass_is_degenerate_stage(self):
        net = Netlist("t")
        net.set_input("a", "b", "en")
        net.add_enh("en", "a", "b", name="bridge")
        graph = decompose(net)
        degenerate = [s for s in graph if not s.nodes]
        assert len(degenerate) == 1
        assert degenerate[0].device_names == ("bridge",)

    def test_gate_only_node_in_no_stage(self):
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("a", "y", "gnd")
        net.add_pullup("y")
        net.add_enh("y", "z", "gnd")  # y gates; z is a member
        net.add_pullup("z")
        graph = decompose(net)
        assert graph.stage_of("a") is None


class TestStageGraphApi:
    def test_stage_of_boundary_is_none(self):
        net = inverter_chain(2)
        graph = decompose(net)
        assert graph.stage_of("a") is None
        assert graph.stage_of("vdd") is None

    def test_indexing_and_iteration(self):
        graph = decompose(inverter_chain(3))
        assert graph[0].index == 0
        assert [s.index for s in graph] == [0, 1, 2]

    def test_stages_gated_by(self):
        net = inverter_chain(3)
        graph = decompose(net)
        gated = graph.stages_gated_by("n0")
        assert len(gated) == 1
        assert "n1" in gated[0].nodes

    def test_summary_counts(self):
        graph = decompose(inverter_chain(3))
        summary = graph.summary()
        assert summary["stages"] == 3
        assert summary["devices"] == 6

    def test_duplicate_node_assignment_rejected(self):
        net = inverter_chain(1)
        stage = decompose(net)[0]
        clone = Stage(
            index=1,
            nodes=stage.nodes,
            device_names=stage.device_names,
            gate_inputs=stage.gate_inputs,
            boundary=stage.boundary,
            outputs=stage.outputs,
        )
        with pytest.raises(StageError):
            StageGraph(net, [stage, clone])

    def test_external_gate_inputs_excludes_internal(self):
        # Cross-coupled pair: each node gates the other inverter inside the
        # same stage... but rails cut them into two stages, so here use a
        # bootstrap-like same-stage gate: pass device gated by a stage node.
        net = Netlist("t")
        net.set_input("a")
        net.add_pullup("x")
        net.add_enh("a", "x", "gnd")
        net.add_enh("x", "x2", "x3")  # gated by internal-ish node x
        net.add_enh("a", "x2", "gnd")
        net.add_pullup("x2")
        graph = decompose(net)
        stage = graph.stage_of("x2")
        assert stage is graph.stage_of("x3")
        # x is in another stage, so it is an external gate input here.
        assert "x" in stage.external_gate_inputs
