"""Tests for the switch-level functional simulator (repro.sim.switchsim)."""

import pytest

from repro import Netlist, SimulationError
from repro.circuits import (
    decoder,
    full_adder,
    inverter,
    mux2,
    nand,
    nor,
    pass_chain,
    xor2,
)
from repro.sim import SwitchSim, X


def run(net, assignments):
    sim = SwitchSim(net)
    sim.step(assignments)
    return sim


class TestGates:
    def test_inverter_truth_table(self):
        net = inverter()
        assert run(net, {"a": 0}).value("out") == 1
        assert run(net, {"a": 1}).value("out") == 0

    def test_inverter_x_propagates(self):
        net = inverter()
        assert run(net, {"a": X}).value("out") is X

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 1), (0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_nand2(self, a, b, expected):
        assert run(nand(2), {"a0": a, "a1": b}).value("out") == expected

    @pytest.mark.parametrize("a,b,expected", [(0, 0, 1), (0, 1, 0), (1, 0, 0), (1, 1, 0)])
    def test_nor2(self, a, b, expected):
        assert run(nor(2), {"a0": a, "a1": b}).value("out") == expected

    def test_nand_partial_x_resolves_when_determined(self):
        # NAND with one input 0 is 1 regardless of the X.
        sim = run(nand(2), {"a0": 0, "a1": X})
        assert sim.value("out") == 1

    def test_nand_x_when_undetermined(self):
        sim = run(nand(2), {"a0": 1, "a1": X})
        assert sim.value("out") is X

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xor(self, a, b):
        assert run(xor2(), {"a": a, "b": b}).value("out") == (a ^ b)


class TestPassLogic:
    def test_pass_chain_transmits(self):
        net = pass_chain(5)
        sim = run(net, {"d": 1, "sel": 1})
        assert sim.value("p4") == 1
        sim.step({"d": 0})
        assert sim.value("p4") == 0

    def test_open_chain_retains_charge(self):
        net = pass_chain(3)
        sim = run(net, {"d": 1, "sel": 1})
        assert sim.value("p2") == 1
        sim.step({"sel": 0})
        assert sim.value("p2") == 1  # stored
        sim.step({"d": 0})
        assert sim.value("p2") == 1  # still isolated

    def test_x_select_disturbs_stored_value(self):
        net = pass_chain(2)
        sim = run(net, {"d": 1, "sel": 1})
        sim.step({"sel": 0, "d": 0})
        assert sim.value("p1") == 1
        sim.step({"sel": X})
        assert sim.value("p1") is X

    @pytest.mark.parametrize("sel,a,b,expected", [(1, 1, 0, 1), (1, 0, 1, 0), (0, 1, 0, 0), (0, 0, 1, 1)])
    def test_mux(self, sel, a, b, expected):
        sim = run(mux2(), {"sel": sel, "a": a, "b": b})
        assert sim.value("out") == expected
        assert sim.value("outb") == 1 - expected


class TestComposite:
    @pytest.mark.parametrize("a,b,cin", [(a, b, c) for a in (0, 1) for b in (0, 1) for c in (0, 1)])
    def test_full_adder_exhaustive(self, a, b, cin):
        sim = run(full_adder(), {"a": a, "b": b, "cin": cin})
        total = a + b + cin
        assert sim.value("sum") == total & 1
        assert sim.value("cout") == total >> 1

    def test_decoder_one_hot(self):
        net = decoder(3)
        for k in range(8):
            sim = SwitchSim(net)
            sim.set_word([f"a{i}" for i in range(3)], k)
            sim.settle()
            lines = [sim.value(f"line{j}") for j in range(8)]
            assert lines == [1 if j == k else 0 for j in range(8)]


class TestWordHelpers:
    def test_word_round_trip(self):
        net = decoder(2)
        sim = SwitchSim(net)
        sim.set_word(["a0", "a1"], 2)
        assert sim.values(["a0", "a1"]) == [0, 1]
        assert sim.word(["a0", "a1"]) == 2

    def test_word_none_on_x(self):
        net = decoder(2)
        sim = SwitchSim(net)
        assert sim.word(["a0", "a1"]) is None

    def test_set_input_validation(self):
        sim = SwitchSim(inverter())
        with pytest.raises(SimulationError):
            sim.set_input("out", 1)
        with pytest.raises(SimulationError):
            sim.set_input("a", 7)

    def test_unknown_node_value(self):
        with pytest.raises(SimulationError):
            SwitchSim(inverter()).value("ghost")


class TestFeedbackAndOscillation:
    def test_cross_coupled_pair_holds_state(self):
        net = Netlist("sr")
        net.set_input("set_n")  # drive s low through a pass to flip
        from repro.circuits import add_inverter, add_pass

        add_inverter(net, "s", "ns", tag="i1")
        add_inverter(net, "ns", "s", tag="i2")
        add_pass(net, "set_n", "gnd2", "s", name="force")
        net.add_node("gnd2")
        net.add_enh("vdd", "gnd2", "gnd", name="tie")  # gnd2 is a hard low
        sim = SwitchSim(net)
        sim.step({"set_n": 1})  # force s low
        assert sim.value("s") == 0 and sim.value("ns") == 1
        sim.step({"set_n": 0})  # release: state must hold
        assert sim.value("s") == 0 and sim.value("ns") == 1

    def test_ring_oscillator_detected(self):
        net = Netlist("ring")
        from repro.circuits import add_inverter

        net.set_input("kick")
        add_inverter(net, "r2", "r0", tag="i0")
        add_inverter(net, "r0", "r1", tag="i1")
        add_inverter(net, "r1", "r2", tag="i2")
        net.add_enh("kick", "r2", "gnd", name="force")
        sim = SwitchSim(net)
        sim.step({"kick": 1})  # held: settles with r2 forced low
        with pytest.raises(SimulationError):
            sim.step({"kick": 0})  # released: oscillates
