"""Tests for the technology model (repro.tech)."""

import pytest

from repro import NMOS4, Technology, UM


class TestDefaults:
    def test_default_is_4um_process(self):
        assert NMOS4.lam == pytest.approx(2.0 * UM)
        assert NMOS4.vdd == 5.0

    def test_thresholds_have_nmos_signs(self):
        assert NMOS4.vt_enh > 0
        assert NMOS4.vt_dep < 0

    def test_min_device_geometry(self):
        assert NMOS4.min_width() == pytest.approx(4 * NMOS4.lam)
        assert NMOS4.min_length() == pytest.approx(2 * NMOS4.lam)


class TestEffectiveResistance:
    def test_square_device_resistance(self):
        r = NMOS4.r_eff("enh", w=10 * UM, l=10 * UM)
        assert r == pytest.approx(NMOS4.r_sq_enh_pulldown)

    def test_wider_device_is_stronger(self):
        narrow = NMOS4.r_eff("enh", w=8 * UM, l=4 * UM)
        wide = NMOS4.r_eff("enh", w=16 * UM, l=4 * UM)
        assert wide == pytest.approx(narrow / 2)

    def test_pass_mode_is_weaker(self):
        normal = NMOS4.r_eff("enh", w=8 * UM, l=4 * UM)
        passing = NMOS4.r_eff("enh", w=8 * UM, l=4 * UM, pass_mode=True)
        assert passing > normal

    def test_depletion_uses_its_own_sheet_value(self):
        r = NMOS4.r_eff("dep", w=5 * UM, l=10 * UM)
        assert r == pytest.approx(2 * NMOS4.r_sq_dep_pullup)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NMOS4.r_eff("pmos", w=1 * UM, l=1 * UM)

    def test_nonpositive_geometry_rejected(self):
        with pytest.raises(ValueError):
            NMOS4.r_eff("enh", w=0.0, l=1 * UM)


class TestCapacitance:
    def test_gate_cap_scales_with_area(self):
        c1 = NMOS4.c_gate(8 * UM, 4 * UM)
        c2 = NMOS4.c_gate(16 * UM, 4 * UM)
        assert c2 == pytest.approx(2 * c1)

    def test_min_gate_cap_is_tens_of_femtofarads(self):
        c = NMOS4.c_gate(NMOS4.min_width(), NMOS4.min_length())
        assert 1e-15 < c < 100e-15

    def test_diffusion_cap_positive(self):
        assert NMOS4.c_diff(8 * UM) > 0


class TestScaling:
    def test_scaled_shrinks_lambda(self):
        half = NMOS4.scaled(0.5)
        assert half.lam == pytest.approx(NMOS4.lam * 0.5)

    def test_scaled_shrinks_min_device_caps(self):
        half = NMOS4.scaled(0.5)
        c_full = NMOS4.c_gate(NMOS4.min_width(), NMOS4.min_length())
        c_half = half.c_gate(half.min_width(), half.min_length())
        assert c_half == pytest.approx(c_full / 4)

    def test_scaled_keeps_sheet_resistance(self):
        half = NMOS4.scaled(0.5)
        assert half.r_sq_enh_pulldown == NMOS4.r_sq_enh_pulldown

    def test_scaled_names_derived(self):
        assert "x0.5" in NMOS4.scaled(0.5).name
        assert NMOS4.scaled(0.5, name="custom").name == "custom"

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            NMOS4.scaled(0.0)

    def test_technology_is_frozen(self):
        with pytest.raises(AttributeError):
            NMOS4.vdd = 3.3  # type: ignore[misc]


class TestBeta:
    def test_beta_scales_with_aspect(self):
        b1 = NMOS4.beta(8 * UM, 4 * UM)
        b2 = NMOS4.beta(16 * UM, 4 * UM)
        assert b2 == pytest.approx(2 * b1)


class TestSerialization:
    def test_round_trip_dict(self):
        data = NMOS4.to_dict()
        clone = Technology.from_dict(data)
        assert clone == NMOS4

    def test_from_dict_partial(self):
        custom = Technology.from_dict({"name": "fast", "vdd": 3.0})
        assert custom.vdd == 3.0
        assert custom.vt_enh == NMOS4.vt_enh  # defaults fill in

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            Technology.from_dict({"not_a_parameter": 1.0})

    def test_from_json_file(self, tmp_path):
        import json

        path = tmp_path / "proc.json"
        path.write_text(json.dumps({"name": "filed", "vdd": 4.5}))
        tech = Technology.from_json(path)
        assert tech.name == "filed" and tech.vdd == 4.5

    def test_from_json_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            Technology.from_json(path)


class TestCorners:
    def test_three_corners(self):
        corners = Technology.corners()
        assert set(corners) == {"slow", "typ", "fast"}
        assert corners["typ"] == NMOS4

    def test_slow_is_weaker_and_fatter(self):
        slow = NMOS4.corner("slow")
        assert slow.r_sq_enh_pulldown > NMOS4.r_sq_enh_pulldown
        assert slow.c_gate_area > NMOS4.c_gate_area
        assert slow.kprime < NMOS4.kprime

    def test_fast_is_stronger_and_leaner(self):
        fast = NMOS4.corner("fast")
        assert fast.r_sq_enh_pulldown < NMOS4.r_sq_enh_pulldown
        assert fast.c_gate_area < NMOS4.c_gate_area

    def test_unknown_corner_rejected(self):
        with pytest.raises(ValueError):
            NMOS4.corner("nominal")

    def test_corner_ordering_on_a_circuit(self):
        from repro import TimingAnalyzer
        from repro.circuits import inverter_chain

        delays = {}
        for which, tech in Technology.corners().items():
            net = inverter_chain(4, tech=tech)
            delays[which] = TimingAnalyzer(net).analyze().max_delay
        assert delays["fast"] < delays["typ"] < delays["slow"]
