"""The tracing facility: counters, timers, logging, and the null object.

Contracts under test: metrics accumulate correctly, attribution is a
probability distribution, timer completions reach the stdlib ``"repro"``
logger, the analyzer populates the documented phase names, and the
disabled path (``NULL_TRACE``) collects nothing.
"""

import logging

import pytest

from repro import NULL_TRACE, NullTrace, Trace, TimingAnalyzer, get_logger
from repro.circuits import register_bit, ripple_adder


class TestTrace:
    def test_counters_accumulate(self):
        trace = Trace(logger=None)
        trace.incr("arcs")
        trace.incr("arcs", 4)
        assert trace.counters == {"arcs": 5}

    def test_timers_accumulate_across_uses(self):
        trace = Trace(logger=None)
        with trace.timer("extract"):
            pass
        first = trace.timers_s["extract"]
        with trace.timer("extract"):
            pass
        assert trace.timers_s["extract"] > first
        assert set(trace.timers_s) == {"extract"}

    def test_attribution_sums_to_one(self):
        trace = Trace(logger=None)
        with trace.timer("a"):
            pass
        with trace.timer("b"):
            pass
        shares = trace.attribution()
        assert set(shares) == {"a", "b"}
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(share >= 0 for share in shares.values())

    def test_attribution_empty_when_nothing_timed(self):
        assert Trace(logger=None).attribution() == {}

    def test_snapshot_is_detached_copy(self):
        trace = Trace(logger=None)
        trace.incr("n")
        snap = trace.snapshot()
        trace.incr("n")
        assert snap == {"counters": {"n": 1}, "timers_s": {}}

    def test_summary_lists_everything(self):
        trace = Trace(logger=None)
        trace.incr("devices", 7)
        with trace.timer("flow"):
            pass
        text = trace.summary()
        assert "devices" in text and "flow" in text

    def test_summary_empty(self):
        assert "(empty)" in Trace(logger=None).summary()

    def test_clear(self):
        trace = Trace(logger=None)
        trace.incr("x")
        with trace.timer("t"):
            pass
        trace.clear()
        assert trace.counters == {} and trace.timers_s == {}

    def test_timer_logs_debug_on_package_logger(self, caplog):
        trace = Trace()  # default: the "repro" logger
        with caplog.at_level(logging.DEBUG, logger="repro"):
            with trace.timer("extract"):
                pass
        assert any(
            "extract" in record.message and record.name == "repro"
            for record in caplog.records
        )

    def test_logger_none_is_silent(self, caplog):
        trace = Trace(logger=None)
        with caplog.at_level(logging.DEBUG):
            with trace.timer("extract"):
                pass
        assert not caplog.records
        assert "extract" in trace.timers_s  # still collected

    def test_get_logger_name(self):
        assert get_logger().name == "repro"


class TestNullTrace:
    def test_collects_nothing(self):
        null = NullTrace()
        null.incr("arcs", 100)
        with null.timer("extract"):
            pass
        assert null.counters == {} and null.timers_s == {}
        assert null.attribution() == {}
        assert not null.enabled

    def test_shared_singleton_timer_is_reusable(self):
        timer = NULL_TRACE.timer("a")
        assert NULL_TRACE.timer("b") is timer  # one object, no allocation
        with timer:
            with timer:
                pass

    def test_null_is_silent(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            with NULL_TRACE.timer("extract"):
                pass
            NULL_TRACE._log("boom")
        assert not caplog.records


class TestAnalyzerIntegration:
    def test_combinational_phases_timed(self):
        trace = Trace(logger=None)
        TimingAnalyzer(ripple_adder(4), trace=trace).analyze()
        assert set(trace.timers_s) >= {
            "erc", "flow", "stages", "extract", "propagate", "paths",
        }
        assert trace.counters["devices"] > 0
        assert trace.counters["stages"] > 0
        assert trace.counters["arcs"] > 0
        assert trace.counters["arrivals"] > 0

    def test_two_phase_constraints_timed(self):
        trace = Trace(logger=None)
        TimingAnalyzer(register_bit(), trace=trace).analyze()
        assert "constraints" in trace.timers_s
        assert trace.counters["arrivals"] > 0

    def test_default_is_shared_null_trace(self):
        tv = TimingAnalyzer(ripple_adder(2))
        assert tv.trace is NULL_TRACE

    def test_tracing_does_not_change_results(self):
        net_a = ripple_adder(4)
        net_b = ripple_adder(4)
        plain = TimingAnalyzer(net_a).analyze()
        traced = TimingAnalyzer(net_b, trace=Trace(logger=None)).analyze()
        plain.analysis_seconds = traced.analysis_seconds = 0.0
        assert plain.report() == traced.report()
        assert plain.to_json() == traced.to_json()

    def test_one_trace_spans_many_analyses(self):
        trace = Trace(logger=None)
        TimingAnalyzer(ripple_adder(2), trace=trace).analyze()
        first_extract = trace.timers_s["extract"]
        first_devices = trace.counters["devices"]
        TimingAnalyzer(ripple_adder(2), trace=trace).analyze()
        assert trace.timers_s["extract"] > first_extract
        assert trace.counters["devices"] == 2 * first_devices
