"""Tests for electrical rules checks (repro.netlist.validate)."""

import pytest

from repro import ElectricalRuleError, Netlist, UM
from repro.circuits import full_adder, inverter_chain, mux2
from repro.netlist import check, validate


def codes(violations):
    return {v.code for v in violations}


class TestCleanCircuits:
    @pytest.mark.parametrize(
        "net", [inverter_chain(3), mux2(), full_adder()], ids=["inv", "mux", "fa"]
    )
    def test_generated_circuits_pass(self, net):
        errors = [v for v in check(net) if v.severity == "error"]
        assert errors == []

    def test_validate_returns_warnings(self, inverter_net):
        assert validate(inverter_net) == []


class TestFloatingGate:
    def test_detected(self):
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("ghost", "a", "gnd")  # 'ghost' gates but is undriven
        assert "floating-gate" in codes(check(net))

    def test_validate_raises(self):
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("ghost", "a", "gnd")
        with pytest.raises(ElectricalRuleError):
            validate(net)

    def test_driven_gate_ok(self, inverter_net):
        assert "floating-gate" not in codes(check(inverter_net))


class TestRailShort:
    def test_depletion_across_rails_flagged(self):
        net = Netlist("t")
        net.add_transistor("dep", "x", "vdd", "gnd")
        net.set_input("x")
        assert "rail-short" in codes(check(net))

    def test_enhancement_across_rails_not_short(self):
        # An enh device vdd-gnd gated by a signal is a (strange but legal)
        # switch, not a static short.
        net = Netlist("t")
        net.set_input("x")
        net.add_enh("x", "vdd", "gnd")
        assert "rail-short" not in codes(check(net))


class TestNoDcPath:
    def test_isolated_pass_island_flagged(self):
        net = Netlist("t")
        net.set_input("en")
        # y gates something but its channel net never reaches a rail/input.
        net.add_enh("en", "island", "y")
        net.add_enh("y", "q", "gnd")
        net.set_input("q")  # keep q itself legal
        assert "no-dc-path" in codes(check(net))

    def test_pass_from_input_ok(self):
        net = Netlist("t")
        net.set_input("d", "en")
        net.add_enh("en", "d", "y")
        net.add_enh("y", "q", "gnd")
        net.set_output("q")
        net.add_pullup("q")
        assert "no-dc-path" not in codes(check(net))


class TestRatio:
    def test_strong_pullup_flagged(self):
        net = Netlist("t")
        net.set_input("a")
        # Pull-up as strong as the pull-down: ratio 1 < 3.
        net.add_pullup("out", w=8 * UM, l=4 * UM)
        net.add_enh("a", "out", "gnd", w=8 * UM, l=4 * UM)
        assert "ratio" in codes(check(net))

    def test_standard_inverter_ok(self, inverter_net):
        assert "ratio" not in codes(check(inverter_net))


class TestOutputs:
    def test_dangling_output_flagged(self):
        net = Netlist("t")
        net.set_output("y")
        assert "dangling-output" in codes(check(net))


class TestWarnings:
    def test_gated_rail_warning(self):
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("vdd", "a", "y", name="odd")
        net.add_enh("y", "q", "gnd")
        net.add_pullup("q")
        found = [v for v in check(net) if v.code == "gated-rail"]
        assert found and found[0].severity == "warning"
        assert "always on" in found[0].message

    def test_undriven_node_warning(self):
        net = Netlist("t")
        net.add_node("orphan")
        found = [v for v in check(net) if v.code == "undriven-node"]
        assert found and found[0].subject == "orphan"

    def test_violation_str_format(self):
        net = Netlist("t")
        net.add_node("orphan")
        v = [x for x in check(net) if x.code == "undriven-node"][0]
        text = str(v)
        assert "undriven-node" in text and "orphan" in text


class TestValidateErrorPayload:
    def _broken_net(self):
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("ghost", "a", "gnd")  # floating-gate error
        net.add_node("orphan")  # undriven-node warning
        return net

    def test_raised_error_carries_all_violations(self):
        with pytest.raises(ElectricalRuleError) as excinfo:
            validate(self._broken_net())
        exc = excinfo.value
        assert set(exc.violations) == set(check(self._broken_net()))
        assert any(v.code == "floating-gate" for v in exc.errors)
        assert any(v.code == "undriven-node" for v in exc.warnings)

    def test_warning_only_netlist_returns_them(self):
        # The gated-rail circuit produces warnings but no errors, so
        # validate() must return instead of raising.
        net = Netlist("t")
        net.set_input("a")
        net.add_enh("vdd", "a", "y", name="odd")
        net.add_enh("y", "q", "gnd")
        net.add_pullup("q")
        warnings = validate(net)
        assert warnings and all(v.severity == "warning" for v in warnings)
        assert "gated-rail" in codes(warnings)
