"""Tests for the test-vector deck runner (repro.sim.vectors)."""

import pytest

from repro import SimulationError
from repro.circuits import full_adder, ripple_adder, shift_register
from repro.cli import main
from repro.netlist import sim_dumps
from repro.sim import X, parse_deck, run_deck


class TestParsing:
    def test_basic_commands(self):
        deck = parse_deck(
            "| header comment\n"
            "set a=1 b=0\n"
            "settle\n"
            "expect y=x\n"
            "cycle 3\n"
        )
        assert [c.op for c in deck] == ["set", "settle", "expect", "cycle"]
        assert deck[0].assignments == (("a", 1), ("b", 0))
        assert deck[2].assignments == (("y", X),)
        assert deck[3].count == 3

    @pytest.mark.parametrize(
        "text",
        [
            "set\n",
            "set a\n",
            "set a=2\n",
            "cycle zero\n",
            "cycle 0\n",
            "teleport a=1\n",
            "expect\n",
        ],
    )
    def test_malformed_lines_rejected(self, text):
        with pytest.raises(SimulationError):
            parse_deck(text)

    def test_line_numbers_in_errors(self):
        with pytest.raises(SimulationError) as exc_info:
            parse_deck("set a=1\nbogus\n")
        assert "line 2" in str(exc_info.value)


class TestRunning:
    def test_full_adder_deck_passes(self):
        deck = parse_deck(
            "set a=1 b=1 cin=1\n"
            "expect sum=1 cout=1\n"
            "set cin=0\n"
            "expect sum=0 cout=1\n"
        )
        result = run_deck(full_adder(), deck)
        assert result.ok
        assert result.expectations == 4
        assert "PASS" in result.summary()

    def test_failure_reported_with_line(self):
        deck = parse_deck("set a=1 b=0 cin=0\nexpect sum=0\n")
        result = run_deck(full_adder(), deck)
        assert not result.ok
        failure = result.failures[0]
        assert failure.line == 2
        assert failure.node == "sum"
        assert "FAIL" in result.summary()

    def test_clocked_deck(self):
        deck = parse_deck(
            "set d=1\n"
            "cycle\n"
            "expect q0=1\n"
            "set d=0\n"
            "cycle\n"
            "expect q0=0 q1=1\n"
        )
        result = run_deck(shift_register(3), deck)
        assert result.ok, result.summary()

    def test_cycle_on_combinational_rejected(self):
        deck = parse_deck("cycle\n")
        with pytest.raises(SimulationError):
            run_deck(full_adder(), deck)

    def test_x_expectation(self):
        # Uninitialized adder inputs: outputs are unknown.
        deck = parse_deck("expect sum=x\n")
        result = run_deck(full_adder(), deck)
        assert result.ok


class TestCliSimulate:
    def test_pass_and_fail_exit_codes(self, tmp_path, capsys):
        netfile = tmp_path / "fa.sim"
        netfile.write_text(sim_dumps(full_adder()))
        good = tmp_path / "good.vec"
        good.write_text("set a=1 b=0 cin=0\nexpect sum=1 cout=0\n")
        bad = tmp_path / "bad.vec"
        bad.write_text("set a=1 b=0 cin=0\nexpect sum=0\n")
        assert main(["simulate", str(netfile), str(good)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["simulate", str(netfile), str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_adder_regression_deck(self, tmp_path):
        netfile = tmp_path / "add.sim"
        netfile.write_text(sim_dumps(ripple_adder(4)))
        deck = tmp_path / "regress.vec"
        lines = []
        for a, b, cin in [(3, 5, 0), (15, 15, 1), (9, 6, 1)]:
            total = a + b + cin
            sets = " ".join(
                [f"a{i}={(a >> i) & 1}" for i in range(4)]
                + [f"b{i}={(b >> i) & 1}" for i in range(4)]
                + [f"cin={cin}"]
            )
            expects = " ".join(
                [f"sum{i}={(total >> i) & 1}" for i in range(4)]
                + [f"cout={total >> 4}"]
            )
            lines.append(f"set {sets}")
            lines.append(f"expect {expects}")
        deck.write_text("\n".join(lines) + "\n")
        assert main(["simulate", str(netfile), str(deck)]) == 0
