"""Tests for waveform measurement and stimulus builders (repro.sim)."""

import numpy as np
import pytest

from repro import SimulationError, TwoPhaseClock
from repro.sim import (
    Waveform,
    constant,
    piecewise,
    pulse,
    step,
    two_phase_waveforms,
)


def ramp_wave() -> Waveform:
    """out ramps 0 -> 5 V over 10 ns while inp steps at t = 0."""
    wave = Waveform(["inp", "out"])
    for i in range(101):
        t = i * 0.1e-9
        v_out = min(5.0, 5.0 * t / 10e-9)
        v_in = 0.0 if t == 0 else 5.0
        wave.append(t if i else 1e-15, np.array([v_in, v_out]))
    return wave


class TestWaveform:
    def test_trace_and_value_at(self):
        wave = ramp_wave()
        assert wave.value_at("out", 5e-9) == pytest.approx(2.5, rel=0.05)

    def test_value_clamps_outside_range(self):
        wave = ramp_wave()
        assert wave.value_at("out", -1.0) == pytest.approx(0.0)
        assert wave.value_at("out", 1.0) == pytest.approx(5.0)

    def test_crossings_rise(self):
        wave = ramp_wave()
        xs = wave.crossings("out", 2.5, "rise")
        assert len(xs) == 1
        assert xs[0] == pytest.approx(5e-9, rel=0.05)

    def test_crossing_direction_filter(self):
        wave = ramp_wave()
        assert wave.crossings("out", 2.5, "fall") == []

    def test_crossing_after(self):
        wave = ramp_wave()
        assert wave.crossing_after("out", 2.5, "rise", 6e-9) is None

    def test_delay_between_nodes(self):
        wave = ramp_wave()
        d = wave.delay("inp", "out", 2.5, to_direction="rise")
        assert d == pytest.approx(5e-9, rel=0.1)

    def test_transition_time(self):
        wave = ramp_wave()
        tt = wave.transition_time("out", 0.5, 4.5, "rise")
        assert tt == pytest.approx(8e-9, rel=0.05)

    def test_unknown_node_rejected(self):
        with pytest.raises(SimulationError):
            ramp_wave().trace("nope")

    def test_nonmonotonic_time_rejected(self):
        wave = Waveform(["a"])
        wave.append(1e-9, np.array([0.0]))
        with pytest.raises(SimulationError):
            wave.append(0.5e-9, np.array([0.0]))

    def test_missing_transition_raises(self):
        wave = ramp_wave()
        with pytest.raises(SimulationError):
            wave.transition_time("out", 0.5, 4.5, "fall")


class TestStimuli:
    def test_constant(self):
        assert constant(3.0)(99.0) == 3.0

    def test_step_shape(self):
        s = step(10e-9, 0.0, 5.0, ramp=2e-9)
        assert s(0.0) == 0.0
        assert s(11e-9) == pytest.approx(2.5)
        assert s(20e-9) == 5.0

    def test_step_requires_positive_ramp(self):
        with pytest.raises(SimulationError):
            step(0.0, 0.0, 5.0, ramp=0.0)

    def test_pulse_returns_low(self):
        p = pulse(10e-9, 20e-9, 0.0, 5.0, ramp=1e-9)
        assert p(0.0) == 0.0
        assert p(20e-9) == 5.0
        assert p(50e-9) == 0.0

    def test_piecewise_interpolates(self):
        w = piecewise([(0.0, 0.0), (10e-9, 5.0)])
        assert w(5e-9) == pytest.approx(2.5)
        assert w(-1.0) == 0.0
        assert w(1.0) == 5.0

    def test_piecewise_requires_increasing_times(self):
        with pytest.raises(SimulationError):
            piecewise([(1e-9, 0.0), (1e-9, 5.0)])


class TestTwoPhaseWaveforms:
    def test_nonoverlap_guaranteed(self):
        clock = TwoPhaseClock(nonoverlap=3e-9)
        waves = two_phase_waveforms(clock, 20e-9, 20e-9, 5.0, cycles=2)
        phi1, phi2 = waves["phi1"], waves["phi2"]
        for i in range(2000):
            t = i * 50e-12
            assert not (phi1(t) > 2.5 and phi2(t) > 2.5), f"overlap at {t}"

    def test_both_phases_actually_pulse(self):
        clock = TwoPhaseClock()
        waves = two_phase_waveforms(clock, 15e-9, 15e-9, 5.0, cycles=1)
        ts = [i * 0.1e-9 for i in range(400)]
        assert any(waves["phi1"](t) > 4.0 for t in ts)
        assert any(waves["phi2"](t) > 4.0 for t in ts)

    def test_phase_order(self):
        clock = TwoPhaseClock()
        waves = two_phase_waveforms(clock, 10e-9, 10e-9, 5.0, cycles=1)
        # phi1 pulses before phi2.
        first_phi1 = next(
            i * 0.1e-9 for i in range(1000) if waves["phi1"](i * 0.1e-9) > 2.5
        )
        first_phi2 = next(
            i * 0.1e-9 for i in range(1000) if waves["phi2"](i * 0.1e-9) > 2.5
        )
        assert first_phi1 < first_phi2
